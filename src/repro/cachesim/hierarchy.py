"""Multi-level cache hierarchy with per-boundary traffic accounting."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cachesim.lru import SetAssocCache
from repro.machine.machine import Machine


@dataclass
class TrafficReport:
    """Line traffic observed at every hierarchy boundary.

    ``loads[i]`` / ``writebacks[i]`` count lines crossing boundary *i*,
    where boundary 0 sits between L1 and L2 and the last boundary sits
    between the last cache level and memory.  ``lups`` is filled in by
    the driver so per-update byte volumes can be derived.
    """

    level_names: tuple[str, ...]
    line_bytes: int
    loads: list[int]
    writebacks: list[int]
    accesses: int = 0
    lups: int = 0

    @property
    def boundaries(self) -> tuple[str, ...]:
        """Boundary labels, e.g. ``("L1-L2", "L2-L3", "L3-Mem")``."""
        names = list(self.level_names) + ["Mem"]
        return tuple(f"{a}-{b}" for a, b in zip(names, names[1:]))

    def total_lines(self, boundary: int) -> int:
        """Lines moved in both directions across one boundary."""
        return self.loads[boundary] + self.writebacks[boundary]

    def bytes_per_lup(self, boundary: int) -> float:
        """Bytes per lattice update across one boundary."""
        if self.lups <= 0:
            raise ValueError("lups not set on this report")
        return self.total_lines(boundary) * self.line_bytes / self.lups

    def memory_bytes(self) -> int:
        """Total bytes exchanged with main memory."""
        return self.total_lines(len(self.loads) - 1) * self.line_bytes

    def as_dict(self) -> dict[str, float]:
        """Flat summary used by experiment tables."""
        out: dict[str, float] = {"accesses": self.accesses, "lups": self.lups}
        for i, name in enumerate(self.boundaries):
            out[f"{name} lines"] = self.total_lines(i)
            if self.lups:
                out[f"{name} B/LUP"] = round(self.bytes_per_lup(i), 3)
        return out


def _resolve_engine(engine: str, machine: Machine) -> str:
    """Resolve the ``engine`` selector against the machine's geometry.

    ``"auto"`` picks the vectorized engine when the L1 has enough sets
    for per-set batching to pay off (full-size hierarchies), and the
    scalar engine for tiny or heavily scaled-down caches where the
    per-round batches would degenerate to a handful of ops.  A
    single-level victim hierarchy (degenerate: nothing ever fills) is
    always replayed by the scalar oracle.
    """
    if engine not in ("auto", "scalar", "vector"):
        raise ValueError(
            f"unknown engine {engine!r}; choose 'auto', 'scalar' or 'vector'"
        )
    single_victim = len(machine.caches) == 1 and machine.caches[0].victim
    if engine == "vector":
        if single_victim:
            raise ValueError(
                "the vector engine does not support a single-level "
                "victim hierarchy"
            )
        return "vector"
    if engine == "scalar":
        return "scalar"
    if single_victim or machine.caches[0].n_sets < 32:
        return "scalar"
    return "vector"


class CacheHierarchy:
    """Single-core view of a machine's cache hierarchy.

    Non-victim levels fill on miss at every level the request passed
    through (a standard inclusive-ish model).  A ``victim=True`` last
    level (AMD Rome's L3) is exclusive: it is filled only by evictions
    from the level above, and hits move the line out of it.

    ``engine`` selects the replay implementation: ``"scalar"`` is the
    per-access reference loop, ``"vector"`` the batched NumPy engine in
    :mod:`repro.cachesim.fastlru` (bit-identical counters), and
    ``"auto"`` (default) picks vector for full-size hierarchies.
    """

    def __init__(self, machine: Machine, engine: str = "auto") -> None:
        self.machine = machine
        if any(c.victim for c in machine.caches[:-1]):
            raise ValueError("only the last level may be a victim cache")
        self.engine = _resolve_engine(engine, machine)
        if self.engine == "vector":
            from repro.cachesim.fastlru import VectorCache

            self.levels = [VectorCache(c) for c in machine.caches]
        else:
            self.levels = [SetAssocCache(c) for c in machine.caches]
        n = len(self.levels)
        self.loads = [0] * n
        self.writebacks = [0] * n
        self.accesses = 0
        self._victim_last = machine.caches[-1].victim if n > 0 else False
        self._clock = 1  # global position counter of the vector engine

    # ------------------------------------------------------------------
    def access(self, line: int, write: bool) -> None:
        """One load or store (write-allocate) of a cache line."""
        if self.engine == "vector":
            from repro.cachesim.fastlru import replay_batch

            replay_batch(
                self,
                np.array([line], dtype=np.int64),
                np.array([write], dtype=bool),
            )
            return
        self.accesses += 1
        levels = self.levels
        if levels[0].lookup(line):
            if write:
                levels[0].mark_dirty(line)
            return
        self._miss(line, write)

    def access_many(self, lines: np.ndarray, writes: np.ndarray) -> None:
        """Replay a batch of accesses (hot path: minimal indirection)."""
        if self.engine == "vector":
            from repro.cachesim.fastlru import replay_batch

            replay_batch(self, lines, writes)
            return
        l0 = self.levels[0]
        l0_sets = l0._sets
        n_sets = l0.n_sets
        self.accesses += len(lines)
        hits = 0
        for line, write in zip(lines.tolist(), writes.tolist()):
            s = l0_sets[line % n_sets]
            if line in s:
                hits += 1
                s.move_to_end(line)
                if write:
                    s[line] = True
            else:
                l0.misses += 1
                self._miss(line, write)
        l0.hits += hits

    # ------------------------------------------------------------------
    def _miss(self, line: int, write: bool) -> None:
        """Handle an L1 miss: locate the line, fill, account traffic."""
        levels = self.levels
        n = len(levels)
        last = n - 1
        hit_level = n  # memory by default
        for i in range(1, n):
            lvl = levels[i]
            if i == last and self._victim_last:
                if lvl.contains(line):
                    lvl.hits += 1
                    lvl.remove(line)  # exclusive: hit moves the line out
                    hit_level = i
                else:
                    lvl.misses += 1
                continue
            if lvl.lookup(line):
                hit_level = i
                break
        # Lines cross every boundary between the hit level and the core.
        for i in range(min(hit_level, n)):
            self.loads[i] += 1
        # Fill the levels the request passed through (deepest first).
        fill_top = hit_level - 1 if hit_level <= last and not (
            hit_level == last and self._victim_last
        ) else last
        if self._victim_last:
            fill_top = min(fill_top, last - 1)
        for i in range(fill_top, -1, -1):
            victim = levels[i].insert(line, dirty=False)
            if victim is not None:
                self._evict(i, victim[0], victim[1])
        if write:
            levels[0].mark_dirty(line)

    def _evict(self, level_idx: int, line: int, dirty: bool) -> None:
        """Dispose of a line evicted from ``level_idx``."""
        levels = self.levels
        last = len(levels) - 1
        if level_idx == last:
            if dirty:
                self.writebacks[last] += 1
            return
        below = levels[level_idx + 1]
        if level_idx + 1 == last and self._victim_last:
            # Every L2 eviction is installed in the victim L3.
            self.writebacks[level_idx] += 1
            victim = below.insert(line, dirty=dirty)
            if victim is not None:
                self._evict(last, victim[0], victim[1])
            return
        if dirty:
            self.writebacks[level_idx] += 1
            if below.contains(line):
                below.mark_dirty(line)
            else:
                victim = below.insert(line, dirty=True)
                if victim is not None:
                    self._evict(level_idx + 1, victim[0], victim[1])
        # Clean evictions from inner levels are dropped silently (the
        # copy below stays valid in the fill-through model).

    # ------------------------------------------------------------------
    def report(self, lups: int = 0) -> TrafficReport:
        """Snapshot the traffic counters."""
        return TrafficReport(
            level_names=tuple(c.level.name for c in self.levels),
            line_bytes=self.machine.line_bytes,
            loads=list(self.loads),
            writebacks=list(self.writebacks),
            accesses=self.accesses,
            lups=lups,
        )

    def reset_counters(self) -> None:
        """Zero traffic counters but keep cache contents (warm state)."""
        self.loads = [0] * len(self.levels)
        self.writebacks = [0] * len(self.levels)
        self.accesses = 0
        for lvl in self.levels:
            lvl.hits = 0
            lvl.misses = 0

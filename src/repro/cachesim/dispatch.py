"""Predictor dispatch: analytic layer-condition fast path vs. replay.

The paper's premise is that layer conditions and exact cache simulation
are two predictors of the *same* traffic.  This module makes that
operational: :func:`analyze_lc` decides, per request, whether the
layer-condition analysis is **exact** for the given
spec/grids/plan/machine — and when it is, synthesizes the
:class:`~repro.cachesim.hierarchy.TrafficReport` analytically, skipping
stream generation and replay entirely.

Exactness is not assumed from the classic capacity inequalities (those
only bound *average* behaviour); it is established per cache level with
per-set occupancy arguments on the actual line intervals the sweep
touches:

* a level is **full** when no set ever holds more distinct lines than
  its associativity — then nothing is ever evicted and the level is
  silent after warm-up;
* a reuse is **hit-certain** when the lines touched inside the reuse
  window occupy every set with at most ``assoc`` distinct lines — LRU
  then cannot have evicted the reused line;
* a reuse is **miss-certain** when every occupied set sees at least
  ``assoc + 1`` distinct window lines between reuses (with a slack term
  for the reused line's own neighbourhood) — LRU then must have evicted
  it.

Levels where neither certainty holds (partial blocks, scaled-down
caches, marginal working sets) make the whole request fall back to
:func:`~repro.cachesim.driver.measure_sweep`'s replay — the dispatcher
never guesses.  The supported domain is the unblocked full-grid sweep
(the predict/measure hot path); blocked tuner variants are served by the
batched replay engine instead.
"""

from __future__ import annotations

import os
import threading
from dataclasses import dataclass

import numpy as np

from repro.cachesim.hierarchy import TrafficReport
from repro.codegen.plan import KernelPlan
from repro.grid.grid import GridSet
from repro.machine.machine import Machine
from repro.stencil.spec import StencilSpec

__all__ = [
    "PREDICTORS",
    "PredictorError",
    "PredictorCounters",
    "predictor_counters",
    "LcAnalysis",
    "analyze_lc",
    "lc_traffic_report",
    "validation_enabled",
]

#: Valid values of the ``predictor`` selector threaded through
#: ``measure_sweep`` / ``simulate_kernel`` / the engine and service.
PREDICTORS = ("auto", "lc", "simulate")

#: Environment flag: cross-check every LC-served report against the
#: simulator (slow; used by the property tests and chaos runs).
VALIDATE_ENV = "REPRO_LC_VALIDATE"

#: Interval widening (lines, per side) covering the floor-division
#: jitter when one row/plane window stands in for every translate.
_JITTER = 2


class PredictorError(ValueError):
    """A forced predictor cannot serve the request (``predictor="lc"``
    on a configuration the dispatcher does not claim as exact)."""


class PredictorCounters:
    """Process-wide predictor-path counters (surfaced in ``/metrics``).

    Increments go through :meth:`incr` so concurrent in-process callers
    (threaded ``measure_sweep``) cannot drop counts: a bare ``+=`` on an
    attribute is a read-modify-write that loses updates under races.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.lc_served = 0
        self.sim_served = 0
        self.lc_validation_mismatch = 0

    def incr(self, field: str, n: int = 1) -> None:
        with self._lock:
            setattr(self, field, getattr(self, field) + n)

    def snapshot(self) -> dict[str, int]:
        with self._lock:
            return {
                "lc_served": self.lc_served,
                "sim_served": self.sim_served,
                "lc_validation_mismatch": self.lc_validation_mismatch,
            }

    def reset(self) -> None:
        with self._lock:
            self.lc_served = 0
            self.sim_served = 0
            self.lc_validation_mismatch = 0


_COUNTERS = PredictorCounters()


def predictor_counters() -> PredictorCounters:
    """The process-wide counter object."""
    return _COUNTERS


def validation_enabled() -> bool:
    """Whether LC answers are cross-checked against the simulator."""
    return os.environ.get(VALIDATE_ENV, "") not in ("", "0")


@dataclass(frozen=True)
class LcAnalysis:
    """Outcome of one exactness analysis.

    ``report`` is the synthesized traffic when ``exact``; ``reason``
    says which precondition or certainty test failed otherwise.
    ``regimes`` holds the per-level classification (``full`` / ``plane``
    / ``row``) for the levels that were classified.
    """

    exact: bool
    reason: str
    regimes: tuple[str, ...]
    report: TrafficReport | None


def _merge(starts: np.ndarray, ends: np.ndarray):
    """Union of inclusive integer intervals → disjoint sorted pieces."""
    order = np.argsort(starts, kind="stable")
    s = starts[order]
    e = ends[order]
    # A new piece begins where the start exceeds the running max end + 1.
    run_max = np.maximum.accumulate(e)
    new = np.empty(s.shape[0], dtype=bool)
    new[0] = True
    new[1:] = s[1:] > run_max[:-1] + 1
    idx = np.flatnonzero(new)
    ps = s[idx]
    pe = np.empty(idx.shape[0], dtype=np.int64)
    pe[:-1] = run_max[idx[1:] - 1]
    pe[-1] = run_max[-1]
    return ps, pe


def _distinct(starts: np.ndarray, ends: np.ndarray) -> int:
    ps, pe = _merge(starts, ends)
    return int((pe - ps + 1).sum())


def _occupancy(
    pieces, n_sets: int, widen: int = 0, all_sets: bool = False
) -> tuple[int, int]:
    """Exact per-set distinct-line counts of disjoint pieces.

    Returns ``(occ_min, occ_max)``.  The minimum is over *occupied*
    sets by default, over **all** sets with ``all_sets`` (the form
    miss-certainty needs — an empty set shelters any line mapping to
    it).  ``widen`` grows every piece by that many lines per side (the
    translate-jitter allowance); negative values shrink, for lower
    bounds.
    """
    ps, pe = pieces
    s = ps - widen
    e = pe + widen
    keep = e >= s
    s = s[keep]
    e = e[keep]
    if s.shape[0] == 0:
        return 0, 0
    length = e - s + 1
    base = int((length // n_sets).sum())
    rem = length % n_sets
    a = s % n_sets
    diff = np.zeros(n_sets + 1, dtype=np.int64)
    nz = rem > 0
    a_nz = a[nz]
    b_nz = a_nz + rem[nz] - 1
    wrap = b_nz >= n_sets
    np.add.at(diff, a_nz, 1)
    np.add.at(diff, np.where(wrap, n_sets, b_nz + 1), -1)
    if wrap.any():
        diff[0] += int(wrap.sum())
        np.add.at(diff, b_nz[wrap] - n_sets + 1, -1)
    occ = base + np.cumsum(diff[:n_sets])
    if all_sets:
        return int(occ.min()), int(occ.max())
    occupied = occ > 0
    occ_min = int(occ[occupied].min()) if occupied.any() else 0
    return occ_min, int(occ.max())


def _intersect_len(a, b) -> int:
    """Total line count of the intersection of two disjoint piece lists."""
    sa, ea = a
    sb, eb = b
    i = j = total = 0
    while i < sa.shape[0] and j < sb.shape[0]:
        lo = max(sa[i], sb[j])
        hi = min(ea[i], eb[j])
        if lo <= hi:
            total += int(hi - lo + 1)
        if ea[i] < eb[j]:
            i += 1
        else:
            j += 1
    return total


@dataclass
class _Geometry:
    """Per-row interval geometry of the unblocked sweep."""

    starts: np.ndarray       # one interval per (row, column)
    ends: np.ndarray
    row_of: np.ndarray       # owning row of each interval
    out_starts: np.ndarray   # one interval per row (the store stream)
    out_ends: np.ndarray
    n_rows: int
    rows_per_plane: int
    n_planes: int
    accesses: int


def _geometry(
    spec: StencilSpec, grids: GridSet, plan: KernelPlan
) -> _Geometry:
    from repro.cachesim.stream import _block_geometry

    dim = spec.dim
    shape = grids.interior_shape
    halo = grids[spec.output].halo
    read_offsets = [
        (g, off) for g in spec.reads for off in sorted(spec.offsets[g])
    ]
    bounds = [(0, s) for s in shape]
    cols_flat, col_start, cc, n_chunks, rows = _block_geometry(
        bounds, halo, spec.dtype_bytes, 64, read_offsets, grids,
        grids[spec.output].layout,
    )
    row_of = np.repeat(np.arange(rows), cc)
    starts = cols_flat
    ends = cols_flat + (n_chunks[row_of] - 1)
    out_idx = col_start + cc - 1
    rows_per_plane = shape[dim - 2] if dim >= 2 else 1
    n_planes = rows // rows_per_plane
    return _Geometry(
        starts=starts,
        ends=ends,
        row_of=row_of,
        out_starts=cols_flat[out_idx],
        out_ends=cols_flat[out_idx] + (n_chunks - 1),
        n_rows=rows,
        rows_per_plane=rows_per_plane,
        n_planes=n_planes,
        accesses=int((cc * n_chunks).sum()),
    )


def _ext(spec: StencilSpec, axis: int) -> int:
    """Largest offset span along ``axis`` over the read grids."""
    ext = 0
    for g in spec.reads:
        vals = [o[axis] for o in spec.offsets[g]]
        ext = max(ext, max(vals) - min(vals))
    return ext


def analyze_lc(
    spec: StencilSpec,
    grids: GridSet,
    plan: KernelPlan,
    machine: Machine,
    warmup: bool = True,
) -> LcAnalysis:
    """Decide exactness and, when exact, synthesize the traffic report.

    See the module docstring for the certainty framework.  The analysis
    costs a few interval merges over the row geometry — orders of
    magnitude cheaper than a replay.
    """

    def bail(reason: str, regimes: tuple[str, ...] = ()) -> LcAnalysis:
        return LcAnalysis(
            exact=False, reason=reason, regimes=regimes, report=None
        )

    dim = spec.dim
    shape = grids.interior_shape
    plan = plan.clipped(shape)
    if not warmup:
        return bail("cold-cache sweeps are replay-only")
    if dim not in (2, 3):
        return bail(f"unsupported dimensionality {dim}")
    if plan.wavefront != 1:
        return bail("temporal wavefronts are replay-only")
    if tuple(plan.block) != tuple(shape):
        return bail("blocked plans are served by the batched replay")
    if spec.output in spec.reads:
        return bail("in-place stencils are replay-only")
    if machine.line_bytes != 64:
        return bail("non-64B cache lines are replay-only")
    caches = machine.caches
    if not caches or any(c.victim for c in caches[:-1]):
        return bail("unsupported hierarchy shape")
    if len(caches) == 1 and caches[0].victim:
        return bail("single-level victim hierarchies are replay-only")

    geo = _geometry(spec, grids, plan)
    all_pieces = _merge(geo.starts, geo.ends)
    distinct_all = int((all_pieces[1] - all_pieces[0] + 1).sum())
    distinct_out = _distinct(geo.out_starts, geo.out_ends)

    # Per-plane unions (the z-iteration reuse windows) and their sizes.
    plane_pieces = []
    plane_distinct = []
    rpp = geo.rows_per_plane
    for z in range(geo.n_planes):
        sel = (geo.row_of >= z * rpp) & (geo.row_of < (z + 1) * rpp)
        pieces = _merge(geo.starts[sel], geo.ends[sel])
        plane_pieces.append(pieces)
        plane_distinct.append(int((pieces[1] - pieces[0] + 1).sum()))

    # Row windows stand in for all translates (with jitter widening):
    # the rows a y-step reuse can span.  Two representatives are needed
    # because windows that straddle a plane seam are *not* translates of
    # the within-plane ones (the row pitch jumps by the halo padding):
    # one is taken mid-plane, one centred on a plane boundary.
    w_rows = min(_ext(spec, dim - 2) + 2, geo.n_rows)

    def window_pieces(lo: int, hi: int):
        sel = (geo.row_of >= lo) & (geo.row_of < hi)
        return _merge(geo.starts[sel], geo.ends[sel])

    row_windows = []
    mid_plane = geo.n_planes // 2
    start = mid_plane * rpp + max(0, (rpp - w_rows) // 2)
    start = min(start, geo.n_rows - w_rows)
    row_windows.append((start, start + w_rows))
    if geo.n_planes >= 2:
        # Seam reuses (a line shared by the trailing halo row of one
        # plane and the leading halo row of the next) re-touch within
        # about a radius of row-steps, so a straddling window of the
        # same width certifies them.
        seam = max(1, geo.n_planes // 2) * rpp
        start = min(max(0, seam - w_rows // 2), geo.n_rows - w_rows)
        row_windows.append((start, start + w_rows))
    row_pieces = [window_pieces(lo, hi) for lo, hi in row_windows]

    def occ_row_max(n_sets: int) -> int:
        return max(
            _occupancy(p, n_sets, widen=_JITTER)[1] for p in row_pieces
        )

    # Representative within-plane runs of ``run`` consecutive rows:
    # plane prefix / middle / suffix, at edge and middle planes.  Jitter
    # shrinking gives certain lower bounds, widening upper bounds.
    def _run_placements(run: int):
        z_picks = sorted({0, geo.n_planes // 2, geo.n_planes - 1})
        y_picks = sorted({0, (rpp - run) // 2, rpp - run})
        for z in z_picks:
            for y0 in y_picks:
                lo = z * rpp + y0
                yield window_pieces(lo, lo + run)

    def run_occ_allmin(run: int, n_sets: int) -> int:
        if run < 1 or run > rpp:
            return 0
        return min(
            _occupancy(p, n_sets, widen=-_JITTER, all_sets=True)[0]
            for p in _run_placements(run)
        )

    def run_occ_max(run: int, n_sets: int) -> int:
        return max(
            _occupancy(p, n_sets, widen=_JITTER)[1]
            for p in _run_placements(min(run, rpp))
        )

    # Between-touch windows for miss-certainty: a reused line sees, in
    # between its touches, at least a contiguous run of rows strictly
    # outside its own neighbourhood.  Straddling runs always contain a
    # pure within-plane run of half that length, so the representative
    # placements lower-bound every reuse.
    def between_rows_min(n_sets: int) -> int:
        if rpp - 2 * w_rows < 2:
            return 0
        return run_occ_allmin(max(1, (rpp - 2 * w_rows) // 2), n_sets)

    # Smallest row horizon after which eviction from a level is certain
    # (every placement fills every set past its associativity).
    def evict_horizon_rows(n_sets: int, assoc: int) -> int | None:
        m = w_rows
        while m <= rpp:
            if run_occ_allmin(m, n_sets) >= assoc:
                return m
            m *= 2
        return None

    def between_sweeps_min(n_sets: int) -> int:
        if dim == 2:
            return between_rows_min(n_sets)
        w_planes = min(_ext(spec, 0) + 2, geo.n_planes)
        run = max(1, (geo.n_planes - 2 * w_planes) // 2)
        if geo.n_planes - 2 * w_planes < 2:
            return 0
        occ = None
        for z0 in sorted({0, (geo.n_planes - run) // 2,
                          geo.n_planes - run}):
            omin, _ = _occupancy(
                window_pieces(z0 * rpp, (z0 + run) * rpp), n_sets,
                widen=-_JITTER, all_sets=True,
            )
            occ = omin if occ is None else min(occ, omin)
        return occ or 0

    # Plane-seam corrections for the row regime.  A line shared between
    # the trailing rows of iteration z and the leading rows of iteration
    # z+1 (store seams, halo-row straddles) is re-touched only a few
    # row-steps later — a certain hit the per-plane sums would count as
    # a second miss.  Dually, a straddle line touched in both the
    # leading and trailing band of the *same* iteration (diagonal
    # offsets) misses twice there but appears once in the union.  Every
    # cross-iteration reuse is either such a seam pair or a certain
    # miss a near-full plane away, so these two band intersections are
    # the entire correction.
    band = w_rows
    seam_hits = 0
    far_extra = 0
    for z in range(geo.n_planes):
        lead = window_pieces(z * rpp, z * rpp + band)
        trail = window_pieces((z + 1) * rpp - band, (z + 1) * rpp)
        far_extra += _intersect_len(lead, trail)
        if z + 1 < geo.n_planes:
            next_lead = window_pieces(
                (z + 1) * rpp, (z + 1) * rpp + band
            )
            seam_hits += _intersect_len(trail, next_lead)

    # The z-step reuse window: two consecutive planes, mid-grid.
    if dim == 3 and geo.n_planes >= 2:
        zm = (geo.n_planes - 2) // 2
        sel = (geo.row_of >= zm * rpp) & (geo.row_of < (zm + 2) * rpp)
        zz_window = _merge(geo.starts[sel], geo.ends[sel])
    else:
        zz_window = all_pieces

    levels = len(caches)
    victim_last = caches[-1].victim
    regimes: list[str] = []
    rank = {"row": 0, "plane": 1, "full": 2}
    for k, level in enumerate(caches):
        n_sets, assoc = level.n_sets, level.assoc
        if k == levels - 1 and victim_last:
            # The victim level fills only from evictions; residency
            # certainty is judged against its own geometry, fullness
            # against the level above (a full L2 never spills into it).
            _, occ_all_above = _occupancy(all_pieces, caches[k - 1].n_sets)
            if occ_all_above <= caches[k - 1].assoc:
                regimes.append("full")
                continue
        _, occ_all_max = _occupancy(all_pieces, n_sets)
        if not (k == levels - 1 and victim_last) and occ_all_max <= assoc:
            regimes.append("full")
            continue
        occ_row = occ_row_max(n_sets)
        _, occ_zz = _occupancy(zz_window, n_sets, widen=_JITTER)
        if dim == 3 and occ_zz <= assoc:
            # Plane regime: every reuse inside the two-plane window is
            # hit-certain; first touches must be miss-certain across
            # the warm-up sweep.
            if between_sweeps_min(n_sets) >= assoc:
                regimes.append("plane")
                continue
            return bail(
                f"{level.name}: plane window fits but cross-sweep "
                "eviction is not certain", tuple(regimes)
            )
        if occ_row <= assoc:
            # Row regime: y-step reuse hit-certain, z-step reuse must be
            # miss-certain at this level (and, for a victim level, at
            # the level above too — the line must leave both).
            miss_ok = between_rows_min(n_sets) >= assoc
            if miss_ok and k == levels - 1 and victim_last:
                up = caches[k - 1]
                miss_ok = between_rows_min(up.n_sets) >= up.assoc
            if miss_ok:
                regimes.append("row")
                continue
            return bail(
                f"{level.name}: row window fits but z-step eviction "
                "is not certain", tuple(regimes)
            )
        return bail(
            f"{level.name}: no certain regime (occ_row={occ_row}, "
            f"assoc={assoc})", tuple(regimes)
        )

    # Retention must not shrink with depth, or write-back ordering
    # between adjacent levels is no longer certain.
    for k in range(1, levels):
        if rank[regimes[k]] < rank[regimes[k - 1]]:
            return bail(
                "retention ordering violated "
                f"({regimes[k - 1]} above {regimes[k]})", tuple(regimes)
            )

    loads = [0] * levels
    writebacks = [0] * levels
    try:
        kf = regimes.index("full")
    except ValueError:
        kf = levels
    if victim_last and kf == levels and levels >= 3:
        # The install count at the victim boundary equals the fill count
        # only if no dirty line is ever re-inserted into the feeder
        # level after the feeder dropped its clean copy — i.e. the level
        # above the feeder must provably evict a line before the feeder
        # can.  A row-regime level above a plane-regime feeder satisfies
        # that structurally (eviction within one plane iteration,
        # retention for two); otherwise prove it with an explicit
        # eviction-horizon / retention-span comparison.
        feeder, above = caches[-2], caches[-3]
        ok = regimes[-3] == "row" and regimes[-2] == "plane"
        if not ok and geo.n_planes == 1:
            horizon = evict_horizon_rows(above.n_sets, above.assoc)
            if horizon is not None:
                span = 2 * horizon + w_rows
                ok = (
                    span <= rpp
                    and run_occ_max(span, feeder.n_sets) <= feeder.assoc
                )
        if not ok:
            return bail(
                "victim install accounting: feeder retention not "
                "provably longer than the eviction horizon above it",
                tuple(regimes),
            )
    for k in range(kf):
        if regimes[k] == "plane":
            loads[k] = distinct_all
        else:
            loads[k] = int(sum(plane_distinct)) - seam_hits + far_extra
        writebacks[k] = distinct_out
    if victim_last and kf > levels - 1:
        # Every eviction from the level above installs into the victim
        # level; in periodic steady state installs equal fills.
        writebacks[levels - 2] = loads[levels - 2]

    lups = 1
    for s in shape:
        lups *= s
    report = TrafficReport(
        level_names=tuple(c.name for c in caches),
        line_bytes=machine.line_bytes,
        loads=loads,
        writebacks=writebacks,
        accesses=geo.accesses,
        lups=lups,
    )
    return LcAnalysis(
        exact=True, reason="", regimes=tuple(regimes), report=report
    )


def lc_traffic_report(
    spec: StencilSpec,
    grids: GridSet,
    plan: KernelPlan,
    machine: Machine,
    warmup: bool = True,
) -> TrafficReport | None:
    """Analytic traffic report, or ``None`` when exactness is unclaimed."""
    return analyze_lc(spec, grids, plan, machine, warmup=warmup).report

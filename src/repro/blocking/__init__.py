"""Blocking engine: spatial block selection and temporal (wavefront) blocking."""

from repro.blocking.spatial import (
    BlockChoice,
    analytic_block_selection,
    block_sweep_table,
)
from repro.blocking.temporal import (
    WavefrontPlan,
    run_wavefront,
    wavefront_stream,
    measure_wavefront,
)

__all__ = [
    "BlockChoice",
    "analytic_block_selection",
    "block_sweep_table",
    "WavefrontPlan",
    "run_wavefront",
    "wavefront_stream",
    "measure_wavefront",
]

"""Temporal (wavefront / time-skewed) blocking.

YASK's wavefront feature fuses ``wt`` time steps over slabs of the
outermost axis, skewed by the stencil radius so dependencies are
honoured.  Data of a slab is reused across the fused steps, cutting
memory traffic by up to a factor ``wt`` for memory-bound stencils.

The implementation here is the exact 1-d time-skewing scheme: slab
``[z0, z0+slab)`` executes steps ``t = 0..wt-1`` on the shifted ranges
``[z0 - t*r, z0 + slab - t*r)`` (clipped at the domain ends), with the
two Jacobi buffers alternating per step.  The skew slope equals the
radius, the minimum that keeps the scheme correct.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import prod
from typing import Iterator

import numpy as np

from repro.cachesim.hierarchy import CacheHierarchy, TrafficReport
from repro.cachesim.stream import sweep_stream
from repro.codegen.plan import KernelPlan
from repro.grid.grid import GridSet
from repro.machine.machine import Machine
from repro.stencil import expr as E
from repro.stencil.spec import StencilSpec


@dataclass(frozen=True)
class WavefrontPlan:
    """Temporal blocking parameters on top of a spatial plan."""

    spatial: KernelPlan
    wt: int
    slab: int

    def __post_init__(self) -> None:
        if self.wt < 1:
            raise ValueError("wt must be >= 1")
        if self.slab < 1:
            raise ValueError("slab must be >= 1")

    def describe(self) -> str:
        """Label for tables."""
        return f"{self.spatial.describe()},wt={self.wt},slab={self.slab}"


def _main_input(spec: StencilSpec) -> str:
    main = max(spec.offsets, key=lambda g: (len(spec.offsets[g]), g))
    if spec.in_place:
        raise ValueError("wavefront blocking requires a Jacobi (out-of-place) stencil")
    return main


def _step_ranges(nz: int, slab: int, wt: int, r: int) -> Iterator[tuple[int, int, int]]:
    """Yield ``(t, z_lo, z_hi)`` for every slab and fused step."""
    for z0 in range(0, nz, slab):
        last = z0 + slab >= nz
        for t in range(wt):
            lo = max(0, z0 - t * r)
            hi = nz if last else max(0, z0 + slab - t * r)
            if hi > lo:
                yield t, lo, hi


def _apply_slab(
    spec: StencilSpec,
    arrays: dict[str, np.ndarray],
    params: dict[str, float],
    halo: int,
    z_lo: int,
    z_hi: int,
    in_name: str,
    in_buf: np.ndarray,
    out_buf: np.ndarray,
    shape: tuple[int, ...],
) -> None:
    """Evaluate the stencil on planes ``[z_lo, z_hi)`` with bound buffers."""

    def view(buf: np.ndarray, off: tuple[int, ...]) -> np.ndarray:
        sl = [slice(z_lo + halo + off[0], z_hi + halo + off[0])]
        for a in range(1, spec.dim):
            sl.append(slice(halo + off[a], halo + off[a] + shape[a]))
        return buf[tuple(sl)]

    def ev(node: E.Expr):
        if isinstance(node, E.Const):
            return node.value
        if isinstance(node, E.Param):
            return params[node.name]
        if isinstance(node, E.GridAccess):
            buf = in_buf if node.grid == in_name else arrays[node.grid]
            return view(buf, node.offsets)
        if isinstance(node, E.BinOp):
            lhs, rhs = ev(node.lhs), ev(node.rhs)
            if node.op == "+":
                return lhs + rhs
            if node.op == "-":
                return lhs - rhs
            if node.op == "*":
                return lhs * rhs
            return lhs / rhs
        raise TypeError(type(node).__name__)

    zero = tuple([0] * spec.dim)
    view(out_buf, zero)[...] = ev(spec.expr)


def run_wavefront(
    spec: StencilSpec,
    grids: GridSet,
    plan: WavefrontPlan,
    params: dict[str, float] | None = None,
) -> str:
    """Execute ``wt`` fused time steps; return the name of the grid that
    holds the final result (the main input's buffer for even ``wt``).
    """
    r = spec.radius
    in_name = _main_input(spec)
    out_name = spec.output
    shape = grids.interior_shape
    halo = grids[out_name].halo
    if plan.wt > 1 and halo < r:
        raise ValueError("halo too small for the stencil radius")
    merged = dict(spec.params)
    if params:
        merged.update(params)
    arrays = {g.name: g.data for g in grids}
    bufs = [arrays[in_name], arrays[out_name]]
    for t, lo, hi in _step_ranges(shape[0], plan.slab, plan.wt, r):
        _apply_slab(
            spec, arrays, merged, halo, lo, hi,
            in_name, bufs[t % 2], bufs[(t + 1) % 2], shape,
        )
    return out_name if plan.wt % 2 == 1 else in_name


class _RoleSwappedGrids:
    """GridSet view exchanging the main input and output grid bindings.

    Lets :func:`~repro.cachesim.stream.sweep_stream` generate address
    streams for odd wavefront steps, where the Jacobi buffers trade
    roles.
    """

    def __init__(self, grids: GridSet, a: str, b: str) -> None:
        self._grids = grids
        self._map = {a: b, b: a}
        self.interior_shape = grids.interior_shape

    def __getitem__(self, name: str):
        return self._grids[self._map.get(name, name)]


def wavefront_stream(
    spec: StencilSpec,
    grids: GridSet,
    plan: WavefrontPlan,
) -> Iterator[tuple[np.ndarray, np.ndarray]]:
    """Line-access stream of one wavefront pass over the whole grid."""
    in_name = _main_input(spec)
    swapped = _RoleSwappedGrids(grids, in_name, spec.output)
    shape = grids.interior_shape
    for t, lo, hi in _step_ranges(shape[0], plan.slab, plan.wt, spec.radius):
        source = grids if t % 2 == 0 else swapped
        yield from sweep_stream(spec, source, plan.spatial, z_range=(lo, hi))


def measure_wavefront(
    spec: StencilSpec,
    grids: GridSet,
    plan: WavefrontPlan,
    machine: Machine,
    warmup: bool = True,
) -> TrafficReport:
    """Simulated cache traffic of one wavefront pass (``wt`` time steps)."""
    hier = CacheHierarchy(machine)
    if warmup:
        for lines, writes in wavefront_stream(spec, grids, plan):
            hier.access_many(lines, writes)
        hier.reset_counters()
    for lines, writes in wavefront_stream(spec, grids, plan):
        hier.access_many(lines, writes)
    lups = prod(grids.interior_shape) * plan.wt
    return hier.report(lups=lups)


def predict_wavefront_memtraffic(
    spec: StencilSpec,
    plan: WavefrontPlan,
    base_bytes_per_lup: float,
) -> float:
    """Analytic memory bytes/LUP under wavefront blocking.

    The slab is loaded and written once per ``wt`` fused steps; the skew
    re-reads ``wt * r`` extra planes per slab.
    """
    skew_overhead = 1.0 + plan.wt * spec.radius / plan.slab
    return base_bytes_per_lup / plan.wt * skew_overhead

"""Analytic spatial block-size selection via the ECM model.

This is YaskSite's headline feature: the best block size is found by
*evaluating the model* over the candidate space — no kernel is ever
run.  The empirical counterpart lives in :mod:`repro.autotune`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import obs
from repro.codegen.plan import KernelPlan, candidate_plans
from repro.ecm.model import EcmPrediction, predict
from repro.machine.machine import Machine
from repro.stencil.spec import StencilSpec


@dataclass(frozen=True)
class BlockChoice:
    """Result of an analytic block search."""

    plan: KernelPlan
    prediction: EcmPrediction
    candidates_examined: int

    @property
    def mlups(self) -> float:
        """Predicted performance of the chosen block."""
        return self.prediction.mlups


def analytic_block_selection(
    spec: StencilSpec,
    interior_shape: tuple[int, ...],
    machine: Machine,
    threads: int = 1,
    capacity_factor: float = 1.0,
) -> BlockChoice:
    """Pick the block size with the best ECM prediction.

    Ties (common in the plane-condition plateau) are broken toward the
    *largest* block volume, which minimises loop overhead in practice.
    """
    best: tuple[float, int, KernelPlan, EcmPrediction] | None = None
    examined = 0
    with obs.span("blocking.select") as sp:
        for plan in candidate_plans(
            spec, interior_shape, machine, threads=threads
        ):
            examined += 1
            pred = predict(
                spec,
                interior_shape,
                plan,
                machine,
                capacity_factor=capacity_factor,
            )
            key = (pred.t_ecm, -plan.block_volume())
            if best is None or key < (best[0], best[1]):
                best = (pred.t_ecm, -plan.block_volume(), plan, pred)
        sp.add(candidates=examined)
    if best is None:
        raise ValueError("empty candidate space")
    return BlockChoice(
        plan=best[2], prediction=best[3], candidates_examined=examined
    )


def block_sweep_table(
    spec: StencilSpec,
    interior_shape: tuple[int, ...],
    machine: Machine,
    capacity_factor: float = 1.0,
) -> list[dict[str, object]]:
    """ECM prediction for every candidate block (experiment F2 raw data)."""
    rows = []
    for plan in candidate_plans(spec, interior_shape, machine):
        pred = predict(
            spec, interior_shape, plan, machine, capacity_factor=capacity_factor
        )
        rows.append(
            {
                "plan": plan.describe(),
                "block": plan.block,
                "t_ecm (cy/CL)": round(pred.t_ecm, 2),
                "pred MLUP/s": round(pred.mlups, 1),
                "mem B/LUP": round(pred.memory_bytes_per_lup(), 2),
                "regimes": "/".join(pred.traffic.regimes),
            }
        )
    return rows

"""Command-line interface: ``python -m repro <command> ...``.

Commands
--------
``suite``
    Print the stencil-suite characteristics table (T2).
``machines``
    Print the evaluation-platform table (T1).
``predict``
    ECM prediction for one stencil/grid/machine configuration.
``tune``
    Run a tuner (ecm / exhaustive / greedy) and print the ledger.
``experiment``
    Run one of the reconstructed experiments by id (t1, f2, ...);
    ``--list`` prints the id → module table.
``serve``
    Start the async tuning/prediction HTTP service.

``suite``, ``machines``, ``predict`` and ``tune`` accept ``--json``;
the JSON forms are the same serializers the service responds with
(:mod:`repro.service.serializers`).
"""

from __future__ import annotations

import argparse
import importlib
import json
import sys

from repro.codegen.plan import KernelPlan
from repro.core.yasksite import YaskSite
from repro.stencil.library import STENCIL_SUITE, get_stencil, suite_table
from repro.util.tables import format_table

EXPERIMENTS = {
    "t1": "exp_t1_machines",
    "t2": "exp_t2_stencils",
    "t3": "exp_t3_tuning_cost",
    "t4": "exp_t4_codegen_cost",
    "f1": "exp_f1_ecm_validation",
    "f2": "exp_f2_block_sweep",
    "f3": "exp_f3_scaling",
    "f4": "exp_f4_temporal",
    "f5": "exp_f5_offsite_ranking",
    "f6": "exp_f6_ode_speedup",
    "f7": "exp_f7_ablation_lc",
    "f8": "exp_f8_incore_detail",
    "f9": "exp_f9_overlap",
    "f10": "exp_f10_database",
    "f11": "exp_f11_distributed",
}


def _parse_shape(text: str) -> tuple[int, ...]:
    try:
        shape = tuple(int(p) for p in text.lower().split("x"))
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"bad grid {text!r}; expected e.g. 48x48x64"
        ) from None
    if not shape or any(s <= 0 for s in shape):
        raise argparse.ArgumentTypeError(f"bad grid {text!r}")
    return shape


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="YaskSite reproduction (CGO 2021) command line",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    suite = sub.add_parser("suite", help="print the stencil suite table")
    suite.add_argument("--json", action="store_true", help="emit JSON rows")
    machines = sub.add_parser("machines", help="print the platform table")
    machines.add_argument(
        "--json", action="store_true", help="emit JSON rows"
    )

    pred = sub.add_parser("predict", help="ECM prediction for one config")
    pred.add_argument("stencil", choices=sorted(STENCIL_SUITE))
    pred.add_argument("--grid", type=_parse_shape, default=(48, 48, 64))
    pred.add_argument("--machine", default="clx")
    pred.add_argument("--block", type=_parse_shape, default=None)
    pred.add_argument("--cache-scale", type=float, default=None)
    pred.add_argument("--json", action="store_true", help="emit JSON")

    tune = sub.add_parser("tune", help="tune a stencil on a machine")
    tune.add_argument("stencil", choices=sorted(STENCIL_SUITE))
    tune.add_argument("--grid", type=_parse_shape, default=(48, 48, 64))
    tune.add_argument("--machine", default="clx")
    tune.add_argument(
        "--tuner", choices=("ecm", "exhaustive", "greedy"), default="ecm"
    )
    tune.add_argument("--cache-scale", type=float, default=1 / 32)
    tune.add_argument(
        "--workers",
        type=int,
        default=1,
        help="processes for variant evaluation (empirical tuners)",
    )
    tune.add_argument("--json", action="store_true", help="emit JSON")

    exp = sub.add_parser("experiment", help="run a reconstructed experiment")
    exp.add_argument("id", nargs="?", choices=sorted(EXPERIMENTS))
    exp.add_argument(
        "--list",
        action="store_true",
        help="print the experiment id → module table",
    )

    serve = sub.add_parser(
        "serve", help="start the async tuning/prediction HTTP service"
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port", type=int, default=8753, help="0 picks an ephemeral port"
    )
    serve.add_argument(
        "--workers", type=int, default=2, help="worker-pool size"
    )
    serve.add_argument(
        "--executor",
        choices=("process", "thread"),
        default="process",
        help="worker-pool kind",
    )
    serve.add_argument(
        "--queue-limit",
        type=int,
        default=64,
        help="max in-flight jobs before load-shedding (HTTP 429)",
    )
    serve.add_argument(
        "--cache-size",
        type=int,
        default=1024,
        help="response LRU capacity (entries)",
    )
    serve.add_argument(
        "--timeout",
        type=float,
        default=120.0,
        help="per-request deadline in seconds",
    )
    serve.add_argument(
        "--drain-timeout",
        type=float,
        default=30.0,
        help="graceful-shutdown budget in seconds",
    )
    serve.add_argument(
        "--db",
        default=None,
        help="path of the persistent tuning database (/rank warm tier)",
    )

    return parser


def cmd_suite(args: argparse.Namespace) -> int:
    rows = suite_table()
    if args.json:
        print(json.dumps(rows, indent=2))
        return 0
    print(format_table(rows, title="Stencil suite"))
    return 0


def cmd_machines(args: argparse.Namespace) -> int:
    from repro.experiments.exp_t1_machines import run

    rows = run()["rows"]
    if args.json:
        print(json.dumps(rows, indent=2))
        return 0
    print(format_table(rows, title="Evaluation platforms"))
    return 0


def cmd_predict(args: argparse.Namespace) -> int:
    ys = YaskSite(args.machine, cache_scale=args.cache_scale)
    spec = get_stencil(args.stencil)
    plan = (
        KernelPlan(block=args.block)
        if args.block
        else ys.select_block(spec, args.grid).plan
    )
    pred = ys.predict(spec, args.grid, plan)
    if args.json:
        from repro.service.serializers import prediction_to_dict

        out = prediction_to_dict(pred, plan=plan)
        out["grid"] = list(args.grid)
        print(json.dumps(out, indent=2))
        return 0
    print(f"stencil : {spec.name}")
    print(f"machine : {ys.machine.name}")
    print(f"plan    : {plan.describe()}")
    print(f"ECM     : {pred.notation()}")
    print(f"regimes : {'/'.join(pred.traffic.regimes)}")
    print(f"perf    : {pred.mlups:.1f} MLUP/s (single core)")
    print(f"mem     : {pred.memory_bytes_per_lup():.1f} B/LUP")
    return 0


def cmd_tune(args: argparse.Namespace) -> int:
    ys = YaskSite(args.machine, cache_scale=args.cache_scale)
    spec = get_stencil(args.stencil)
    res = ys.tune(spec, args.grid, tuner=args.tuner, workers=args.workers)
    if args.json:
        from repro.service.serializers import tuner_result_to_dict

        out = tuner_result_to_dict(res)
        out["stencil"] = args.stencil
        out["machine"] = args.machine
        out["grid"] = list(args.grid)
        print(json.dumps(out, indent=2))
        return 0
    print(f"tuner            : {res.tuner}")
    print(f"variants examined: {res.variants_examined}")
    print(f"variants run     : {res.variants_run}")
    print(f"workers          : {res.workers}")
    print(
        f"traffic cache    : {res.traffic_cache_hits} hits / "
        f"{res.traffic_cache_misses} misses"
    )
    print(f"best plan        : {res.best_plan.describe()}")
    print(f"best performance : {res.best_mlups:.1f} MLUP/s")
    return 0


def cmd_experiment(args: argparse.Namespace) -> int:
    if args.list:
        rows = [
            {"id": exp_id, "module": f"repro.experiments.{module}"}
            for exp_id, module in sorted(EXPERIMENTS.items())
        ]
        print(format_table(rows, title="Experiments"))
        return 0
    if args.id is None:
        print("error: experiment needs an id (or --list)", file=sys.stderr)
        return 2
    module = importlib.import_module(
        f"repro.experiments.{EXPERIMENTS[args.id]}"
    )
    module.main()
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from repro.service.config import ServiceConfig
    from repro.service.server import serve

    config = ServiceConfig(
        host=args.host,
        port=args.port,
        workers=args.workers,
        executor=args.executor,
        queue_limit=args.queue_limit,
        response_cache_size=args.cache_size,
        request_timeout_s=args.timeout,
        drain_timeout_s=args.drain_timeout,
        db_path=args.db,
    )
    asyncio.run(serve(config))
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    args = build_parser().parse_args(argv)
    if args.command == "suite":
        return cmd_suite(args)
    if args.command == "machines":
        return cmd_machines(args)
    if args.command == "predict":
        return cmd_predict(args)
    if args.command == "tune":
        return cmd_tune(args)
    if args.command == "serve":
        return cmd_serve(args)
    return cmd_experiment(args)


if __name__ == "__main__":
    sys.exit(main())

"""Command-line interface: ``python -m repro <command> ...``.

Commands
--------
``suite``
    Print the stencil-suite characteristics table (T2).
``machines``
    Print the evaluation-platform table (T1).
``predict``
    ECM prediction for one stencil/grid/machine configuration.
``tune``
    Run a tuner (ecm / exhaustive / greedy) and print the ledger.
``rank``
    Offsite PIRK variant ranking for one (method, grid, machine).
``experiment``
    Run one of the reconstructed experiments by id (t1, f2, ...);
    ``--list`` prints the id → module table.
``serve``
    Start the async tuning/prediction HTTP service.

``predict``, ``tune`` and ``rank`` are thin adapters over
:mod:`repro.engine` — flags become a request payload, the engine runs
it, and ``--json`` emits the canonical serializer output
(:mod:`repro.service.serializers`), so the JSON bytes on stdout equal
the ``result`` object the service responds with for the same request.
``--trace`` additionally records an :mod:`repro.obs` span tree of the
run and writes it to stderr (rendered, or as JSON with ``--json``),
keeping stdout unchanged.
"""

from __future__ import annotations

import argparse
import importlib
import json
import sys
import time

from repro import obs
from repro.engine import (
    PredictRequest,
    RankRequest,
    RequestError,
    TuneRequest,
    default_engine,
)
from repro.offsite.tuner import TABLEAU_FAMILIES
from repro.stencil.library import STENCIL_SUITE, suite_table
from repro.util.tables import format_table

EXPERIMENTS = {
    "t1": "exp_t1_machines",
    "t2": "exp_t2_stencils",
    "t3": "exp_t3_tuning_cost",
    "t4": "exp_t4_codegen_cost",
    "f1": "exp_f1_ecm_validation",
    "f2": "exp_f2_block_sweep",
    "f3": "exp_f3_scaling",
    "f4": "exp_f4_temporal",
    "f5": "exp_f5_offsite_ranking",
    "f6": "exp_f6_ode_speedup",
    "f7": "exp_f7_ablation_lc",
    "f8": "exp_f8_incore_detail",
    "f9": "exp_f9_overlap",
    "f10": "exp_f10_database",
    "f11": "exp_f11_distributed",
}


def _parse_shape(text: str) -> tuple[int, ...]:
    try:
        shape = tuple(int(p) for p in text.lower().split("x"))
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"bad grid {text!r}; expected e.g. 48x48x64"
        ) from None
    if not shape or any(s <= 0 for s in shape):
        raise argparse.ArgumentTypeError(f"bad grid {text!r}")
    return shape


def _parse_block_policy(text: str) -> tuple[int, ...] | str:
    if text == "auto":
        return "auto"
    return _parse_shape(text)


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="YaskSite reproduction (CGO 2021) command line",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    suite = sub.add_parser("suite", help="print the stencil suite table")
    suite.add_argument("--json", action="store_true", help="emit JSON rows")
    machines = sub.add_parser("machines", help="print the platform table")
    machines.add_argument(
        "--json", action="store_true", help="emit JSON rows"
    )

    pred = sub.add_parser("predict", help="ECM prediction for one config")
    pred.add_argument("stencil", choices=sorted(STENCIL_SUITE))
    pred.add_argument("--grid", type=_parse_shape, default=(48, 48, 64))
    pred.add_argument("--machine", default="clx")
    pred.add_argument("--block", type=_parse_shape, default=None)
    pred.add_argument("--cache-scale", type=float, default=None)
    pred.add_argument(
        "--predictor",
        choices=("auto", "lc", "simulate"),
        default="auto",
        help="traffic-predictor selection (accepted for interface "
        "symmetry; prediction is purely analytic, so no traffic is "
        "simulated either way)",
    )
    pred.add_argument("--json", action="store_true", help="emit JSON")
    pred.add_argument(
        "--trace",
        action="store_true",
        help="write a span tree of the run to stderr",
    )

    tune = sub.add_parser("tune", help="tune a stencil on a machine")
    tune.add_argument("stencil", choices=sorted(STENCIL_SUITE))
    tune.add_argument("--grid", type=_parse_shape, default=(48, 48, 64))
    tune.add_argument("--machine", default="clx")
    tune.add_argument(
        "--tuner", choices=("ecm", "exhaustive", "greedy"), default="ecm"
    )
    tune.add_argument("--cache-scale", type=float, default=1 / 32)
    tune.add_argument(
        "--workers",
        type=int,
        default=1,
        help="processes for variant evaluation (empirical tuners)",
    )
    tune.add_argument(
        "--checkpoint",
        default=None,
        help="path of a crash-safe checkpoint file: completed variant "
        "measurements are persisted there and resumed on rerun "
        "(empirical tuners)",
    )
    tune.add_argument(
        "--predictor",
        choices=("auto", "simulate"),
        default="auto",
        help="traffic predictor for variant evaluation: 'auto' serves "
        "the layer-condition fast path when provably exact (falling "
        "back to the cache replay), 'simulate' always replays; both "
        "produce bit-identical reports, so winners match exactly, and "
        "the JSON ledger records which path served each variant "
        "(traffic_cache.lc_served / sim_served).  'lc' is tune-invalid: "
        "tuner sweeps include blocked variants the analysis never "
        "certifies, so forcing it could only fail",
    )
    tune.add_argument("--json", action="store_true", help="emit JSON")
    tune.add_argument(
        "--trace",
        action="store_true",
        help="write a span tree of the run to stderr",
    )

    rank = sub.add_parser(
        "rank", help="Offsite PIRK variant ranking for one method/grid"
    )
    rank.add_argument(
        "--method", choices=sorted(TABLEAU_FAMILIES), default="radau_iia"
    )
    rank.add_argument("--stages", type=int, default=4)
    rank.add_argument("--corrector-steps", type=int, default=3)
    rank.add_argument("--grid", type=_parse_shape, default=(16, 16, 32))
    rank.add_argument("--machine", default="clx")
    rank.add_argument("--cache-scale", type=float, default=1 / 32)
    rank.add_argument(
        "--block",
        type=_parse_block_policy,
        default=None,
        help="explicit block (e.g. 8x8x32), 'auto', or omit for whole-grid",
    )
    rank.add_argument(
        "--no-validate",
        action="store_true",
        help="skip the simulated measurements (pure offline ranking)",
    )
    rank.add_argument("--seed", type=int, default=0)
    rank.add_argument(
        "--checkpoint",
        default=None,
        help="path of a crash-safe checkpoint file for the validation "
        "measurements (resumed on rerun)",
    )
    rank.add_argument(
        "--predictor",
        choices=("auto", "lc", "simulate"),
        default="auto",
        help="traffic-predictor selection (accepted for interface "
        "symmetry; ranking measures composite multi-sweep streams, "
        "which always replay)",
    )
    rank.add_argument("--json", action="store_true", help="emit JSON")
    rank.add_argument(
        "--trace",
        action="store_true",
        help="write a span tree of the run to stderr",
    )

    exp = sub.add_parser("experiment", help="run a reconstructed experiment")
    exp.add_argument("id", nargs="?", choices=sorted(EXPERIMENTS))
    exp.add_argument(
        "--list",
        action="store_true",
        help="print the experiment id → module table",
    )
    exp.add_argument(
        "--json",
        action="store_true",
        help="emit the experiment's raw result dict as JSON",
    )

    serve = sub.add_parser(
        "serve", help="start the async tuning/prediction HTTP service"
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port", type=int, default=8753, help="0 picks an ephemeral port"
    )
    serve.add_argument(
        "--workers", type=int, default=2, help="worker-pool size"
    )
    serve.add_argument(
        "--executor",
        choices=("process", "thread"),
        default="process",
        help="worker-pool kind",
    )
    serve.add_argument(
        "--queue-limit",
        type=int,
        default=64,
        help="max in-flight jobs before load-shedding (HTTP 429)",
    )
    serve.add_argument(
        "--cache-size",
        type=int,
        default=1024,
        help="response LRU capacity (entries)",
    )
    serve.add_argument(
        "--timeout",
        type=float,
        default=120.0,
        help="per-request deadline in seconds",
    )
    serve.add_argument(
        "--drain-timeout",
        type=float,
        default=30.0,
        help="graceful-shutdown budget in seconds",
    )
    serve.add_argument(
        "--db",
        default=None,
        help="path of the persistent tuning database (/rank warm tier)",
    )
    serve.add_argument(
        "--breaker-threshold",
        type=int,
        default=5,
        help="consecutive fresh-job failures before an endpoint's "
        "circuit breaker opens",
    )
    serve.add_argument(
        "--breaker-recovery",
        type=float,
        default=30.0,
        help="seconds an open breaker waits before a half-open probe",
    )
    serve.add_argument(
        "--no-degraded",
        action="store_true",
        help="refuse (503) instead of serving analytic degraded "
        "answers while a breaker is open",
    )
    serve.add_argument(
        "--shards",
        type=int,
        default=0,
        help="run a sharded fabric with this many shard processes "
        "behind a consistent-hash router (0 = single process)",
    )
    serve.add_argument(
        "--fabric-dir",
        default=None,
        help="fabric state directory (segmented database, job ledger, "
        "port files); required with --shards",
    )
    serve.add_argument(
        "--lease-ttl",
        type=float,
        default=60.0,
        help="fabric tune-job lease TTL in seconds",
    )
    serve.add_argument(
        "--steal-interval",
        type=float,
        default=0.5,
        help="idle-shard work-stealing scan period in seconds "
        "(fabric mode)",
    )
    serve.add_argument(
        "--cost-routing",
        action="store_true",
        help="classify jobs by analytic cost at admission and route "
        "them to separate cheap/expensive queues",
    )
    serve.add_argument(
        "--cost-threshold",
        type=float,
        default=0.25,
        help="estimated job seconds at which a job classes as expensive",
    )
    serve.add_argument(
        "--cheap-queue-limit",
        type=int,
        default=None,
        help="admission bound of the cheap queue (default: --queue-limit)",
    )
    serve.add_argument(
        "--expensive-queue-limit",
        type=int,
        default=None,
        help="admission bound of the expensive queue "
        "(default: --queue-limit)",
    )
    serve.add_argument(
        "--cheap-timeout",
        type=float,
        default=None,
        help="cheap-queue request deadline in seconds (default: --timeout)",
    )
    serve.add_argument(
        "--expensive-timeout",
        type=float,
        default=None,
        help="expensive-queue request deadline in seconds "
        "(default: --timeout)",
    )
    serve.add_argument(
        "--expensive-workers",
        type=int,
        default=None,
        help="dedicated pool slots for the expensive queue "
        "(default: share the main pool)",
    )
    serve.add_argument(
        "--approx",
        action="store_true",
        help="serve near-match approximate answers (interpolated from "
        "stored exact results; responses carry approximate+confidence)",
    )
    serve.add_argument(
        "--approx-confidence",
        type=float,
        default=0.75,
        help="minimum confidence an approximate answer needs; below "
        "it the request computes exactly",
    )
    serve.add_argument(
        "--approx-capacity",
        type=int,
        default=512,
        help="exact observations retained as interpolation support",
    )
    serve.add_argument(
        "--adaptive-limits",
        action="store_true",
        help="AIMD adaptive per-class admission limits: grow on "
        "healthy latency, halve when a class's windowed p95 breaches "
        "its target (static limit stays the hard ceiling, floor 1)",
    )
    serve.add_argument(
        "--adaptive-target-ms",
        type=float,
        default=500.0,
        metavar="MS",
        help="latency target of the cheap class's adaptive limiter "
        "(the expensive class targets half its own deadline)",
    )
    serve.add_argument(
        "--brownout",
        action="store_true",
        help="SLO-burn-driven brownout ladder: sustained page alerts "
        "degrade in stages (widen approx acceptance, serve /predict "
        "analytically, shed tune/rank, full shed) with staged "
        "recovery; requires --slo",
    )
    serve.add_argument(
        "--brownout-approx-confidence",
        type=float,
        default=0.5,
        metavar="C",
        help="near-match acceptance bar while browned out (never "
        "raises the configured --approx-confidence)",
    )
    serve.add_argument(
        "--brownout-escalate",
        type=float,
        default=2.0,
        metavar="S",
        help="seconds a page alert must burn before each brownout step",
    )
    serve.add_argument(
        "--brownout-recover",
        type=float,
        default=5.0,
        metavar="S",
        help="calm seconds before each brownout recovery step",
    )
    serve.add_argument(
        "--slo",
        action="store_true",
        help="evaluate SLO objectives with multi-window burn-rate "
        "alerting (surfaced on /slo, as alerts in /healthz and as "
        "slo rows in /metrics)",
    )
    serve.add_argument(
        "--slo-config",
        default=None,
        metavar="JSON|PATH",
        help="objectives: a JSON file path or inline JSON object "
        "(implies --slo; default: the shipped objectives)",
    )
    serve.add_argument(
        "--flight-recorder",
        type=int,
        default=256,
        metavar="N",
        help="per-request flight-recorder ring capacity dumped by "
        "/debug/requests (0 disables recording)",
    )

    obs_cmd = sub.add_parser(
        "obs", help="observability of a running server or fabric"
    )
    obs_sub = obs_cmd.add_subparsers(dest="obs_command", required=True)
    tail = obs_sub.add_parser(
        "tail",
        help="print the newest flight-recorder entries "
        "(attribute a p99 spike or burn alert to actual requests)",
    )
    tail.add_argument("--host", default="127.0.0.1")
    tail.add_argument("--port", type=int, default=8753)
    tail.add_argument(
        "--n", type=int, default=20, help="entries to show (newest first)"
    )
    tail.add_argument(
        "--endpoint", default=None, help="only this endpoint (e.g. /tune)"
    )
    tail.add_argument(
        "--outcome", default=None,
        help="only this outcome (e.g. failed, shed)",
    )
    tail.add_argument(
        "--min-ms", type=float, default=None,
        help="only requests at least this slow",
    )
    tail.add_argument("--json", action="store_true", help="emit JSON")
    slo_status = obs_sub.add_parser(
        "slo", help="print a server's SLO objectives and burn rates"
    )
    slo_status.add_argument("--host", default="127.0.0.1")
    slo_status.add_argument("--port", type=int, default=8753)
    slo_status.add_argument("--json", action="store_true", help="emit JSON")
    slo_status.add_argument(
        "--watch",
        type=float,
        default=None,
        metavar="N",
        help="poll every N seconds instead of printing once "
        "(watch burn rates and brownout transitions live; ctrl-C "
        "to stop)",
    )
    slo_status.add_argument(
        "--iterations",
        type=int,
        default=None,
        metavar="K",
        help="with --watch: stop after K polls (default: forever)",
    )

    store = sub.add_parser(
        "store", help="inspect the unified store tier stack"
    )
    store_sub = store.add_subparsers(dest="store_command", required=True)
    store_stats = store_sub.add_parser(
        "stats",
        help="print a running server's per-tier ledger table "
        "(hits/misses/puts/evictions/hit-rate)",
    )
    store_stats.add_argument("--host", default="127.0.0.1")
    store_stats.add_argument("--port", type=int, default=8753)
    store_stats.add_argument("--json", action="store_true", help="emit JSON")

    fabric = sub.add_parser(
        "fabric", help="inspect or maintain a running/settled fabric"
    )
    fabric_sub = fabric.add_subparsers(dest="fabric_command", required=True)
    status = fabric_sub.add_parser(
        "status", help="print a router's health + metric fan-in"
    )
    status.add_argument("--host", default="127.0.0.1")
    status.add_argument("--port", type=int, default=8750)
    status.add_argument("--json", action="store_true", help="emit JSON")
    compact = fabric_sub.add_parser(
        "compact",
        help="merge a fabric's database segments into the base segment",
    )
    compact.add_argument(
        "--db-dir",
        required=True,
        help="the fabric's segmented database directory (<fabric_dir>/db)",
    )
    compact.add_argument("--json", action="store_true", help="emit JSON")

    return parser


def _traced(args: argparse.Namespace, name: str, fn):
    """Run ``fn`` (optionally under a trace emitted to stderr)."""
    if not args.trace:
        return fn()
    trace = obs.start_trace(name)
    try:
        result = fn()
    finally:
        root = trace.finish()
        if args.json:
            print(json.dumps(root.to_dict(), indent=2), file=sys.stderr)
        else:
            print(obs.render_trace(root), file=sys.stderr)
    return result


def cmd_suite(args: argparse.Namespace) -> int:
    rows = suite_table()
    if args.json:
        print(json.dumps(rows, indent=2))
        return 0
    print(format_table(rows, title="Stencil suite"))
    return 0


def cmd_machines(args: argparse.Namespace) -> int:
    from repro.experiments.exp_t1_machines import run

    rows = run()["rows"]
    if args.json:
        print(json.dumps(rows, indent=2))
        return 0
    print(format_table(rows, title="Evaluation platforms"))
    return 0


def cmd_predict(args: argparse.Namespace) -> int:
    request = PredictRequest.from_payload(
        {
            "stencil": args.stencil,
            "grid": list(args.grid),
            "machine": args.machine,
            "block": list(args.block) if args.block else None,
            "cache_scale": args.cache_scale,
        }
    )
    res = _traced(
        args, "cli:predict", lambda: default_engine().predict(request)
    )
    if args.json:
        from repro.service.serializers import predict_result_to_dict

        print(json.dumps(predict_result_to_dict(res), indent=2))
        return 0
    print(f"stencil : {res.stencil}")
    print(f"machine : {res.machine}")
    print(f"plan    : {res.plan.label}")
    print(f"ECM     : {res.ecm_notation}")
    print(f"regimes : {'/'.join(res.regimes)}")
    print(f"perf    : {res.mlups:.1f} MLUP/s (single core)")
    print(f"mem     : {res.mem_bytes_per_lup:.1f} B/LUP")
    return 0


def cmd_tune(args: argparse.Namespace) -> int:
    request = TuneRequest.from_payload(
        {
            "stencil": args.stencil,
            "grid": list(args.grid),
            "machine": args.machine,
            "tuner": args.tuner,
            "cache_scale": args.cache_scale,
            "workers": args.workers,
            "predictor": args.predictor,
        }
    )
    if args.checkpoint:
        # checkpoint is execution-only (never part of request identity,
        # never read from remote payloads), so it rides constructor-side.
        import dataclasses

        request = dataclasses.replace(request, checkpoint=args.checkpoint)
    res = _traced(args, "cli:tune", lambda: default_engine().tune(request))
    if args.json:
        from repro.service.serializers import tune_result_to_dict

        print(json.dumps(tune_result_to_dict(res), indent=2))
        return 0
    print(f"tuner            : {res.tuner}")
    print(f"variants examined: {res.variants_examined}")
    print(f"variants run     : {res.variants_run}")
    print(f"workers          : {res.workers}")
    print(
        f"traffic cache    : {res.traffic_cache.hits} hits / "
        f"{res.traffic_cache.misses} misses"
    )
    cache = res.traffic_cache
    if cache.lc_served or cache.sim_served:
        parts = [f"lc={cache.lc_served}", f"sim={cache.sim_served}"]
        if cache.lc_validation_mismatch:
            parts.append(f"MISMATCH={cache.lc_validation_mismatch}")
        print(f"predictor        : {' '.join(parts)}")
    if not res.recovery.clean:
        rec = res.recovery
        parts = [f"retried={rec.retried_jobs}"]
        if rec.resumed_jobs:
            parts.append(f"resumed={rec.resumed_jobs}")
        if rec.failed_jobs:
            parts.append(f"failed={len(rec.failed_jobs)}")
        if rec.skipped_jobs:
            parts.append(f"skipped={len(rec.skipped_jobs)}")
        if rec.pool_restarts:
            parts.append(f"pool_restarts={rec.pool_restarts}")
        if rec.in_process_fallback:
            parts.append("in_process_fallback")
        if rec.degraded:
            parts.append("DEGRADED")
        print(f"recovery         : {' '.join(parts)}")
    print(f"best plan        : {res.best_plan.label}")
    print(f"best performance : {res.best_mlups:.1f} MLUP/s")
    return 0


def cmd_rank(args: argparse.Namespace) -> int:
    if isinstance(args.block, tuple):
        block: list[int] | str | None = list(args.block)
    else:
        block = args.block
    request = RankRequest.from_payload(
        {
            "method": args.method,
            "stages": args.stages,
            "corrector_steps": args.corrector_steps,
            "grid": list(args.grid),
            "machine": args.machine,
            "cache_scale": args.cache_scale,
            "block": block,
            "validate": not args.no_validate,
            "seed": args.seed,
        }
    )
    if args.checkpoint:
        import dataclasses

        request = dataclasses.replace(request, checkpoint=args.checkpoint)
    res = _traced(args, "cli:rank", lambda: default_engine().rank(request))
    if args.json:
        from repro.service.serializers import rank_result_to_dict

        print(json.dumps(rank_result_to_dict(res), indent=2))
        return 0
    print(f"method  : {res.method}")
    print(f"ivp     : {res.ivp}")
    print(f"machine : {res.machine}")
    rows = []
    for t in sorted(res.timings, key=lambda t: t.predicted_s):
        row = {
            "variant": t.variant,
            "pred ms/step": round(t.predicted_s * 1e3, 3),
            "sweeps/step": t.sweeps_per_step,
        }
        if t.measured_s is not None:
            row["meas ms/step"] = round(t.measured_s * 1e3, 3)
            row["err %"] = round(t.error_pct, 1)
        rows.append(row)
    print(format_table(rows, title="Variant ranking"))
    print(f"best    : {res.best_variant}")
    if res.kendall_tau is not None:
        print(f"tau     : {res.kendall_tau:.3f}  top1_hit: {res.top1_hit}")
    return 0


def cmd_experiment(args: argparse.Namespace) -> int:
    if args.list:
        rows = [
            {"id": exp_id, "module": f"repro.experiments.{module}"}
            for exp_id, module in sorted(EXPERIMENTS.items())
        ]
        print(format_table(rows, title="Experiments"))
        return 0
    if args.id is None:
        print("error: experiment needs an id (or --list)", file=sys.stderr)
        return 2
    module = importlib.import_module(
        f"repro.experiments.{EXPERIMENTS[args.id]}"
    )
    if args.json:
        print(json.dumps(module.run(), indent=2))
        return 0
    module.main()
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from repro.service.config import ServiceConfig
    from repro.service.server import serve

    if args.shards:
        from repro.fabric import FabricConfig, serve_fabric

        if not args.fabric_dir:
            print("error: --shards requires --fabric-dir", file=sys.stderr)
            return 2
        if args.db:
            print(
                "error: --db is single-process only; the fabric uses a "
                "segmented database under --fabric-dir",
                file=sys.stderr,
            )
            return 2
        fabric_config = FabricConfig(
            fabric_dir=args.fabric_dir,
            host=args.host,
            port=args.port,
            shards=args.shards,
            workers=args.workers,
            executor=args.executor,
            queue_limit=args.queue_limit,
            response_cache_size=args.cache_size,
            request_timeout_s=args.timeout,
            drain_timeout_s=args.drain_timeout,
            breaker_threshold=args.breaker_threshold,
            breaker_recovery_s=args.breaker_recovery,
            degraded_mode=not args.no_degraded,
            lease_ttl_s=args.lease_ttl,
            steal_interval_s=args.steal_interval,
            cost_routing=args.cost_routing,
            cost_threshold_s=args.cost_threshold,
            cheap_queue_limit=args.cheap_queue_limit,
            expensive_queue_limit=args.expensive_queue_limit,
            cheap_timeout_s=args.cheap_timeout,
            expensive_timeout_s=args.expensive_timeout,
            expensive_workers=args.expensive_workers,
            approx_enabled=args.approx,
            approx_confidence=args.approx_confidence,
            approx_capacity=args.approx_capacity,
            adaptive_limits=args.adaptive_limits,
            adaptive_target_ms=args.adaptive_target_ms,
            brownout=args.brownout,
            brownout_approx_confidence=args.brownout_approx_confidence,
            brownout_escalate_s=args.brownout_escalate,
            brownout_recover_s=args.brownout_recover,
            slo_enabled=(
                args.slo or args.brownout or args.slo_config is not None
            ),
            slo_config=args.slo_config,
            flight_recorder=args.flight_recorder,
        )
        asyncio.run(serve_fabric(fabric_config))
        return 0

    config = ServiceConfig(
        host=args.host,
        port=args.port,
        workers=args.workers,
        executor=args.executor,
        queue_limit=args.queue_limit,
        response_cache_size=args.cache_size,
        request_timeout_s=args.timeout,
        drain_timeout_s=args.drain_timeout,
        db_path=args.db,
        breaker_threshold=args.breaker_threshold,
        breaker_recovery_s=args.breaker_recovery,
        degraded_mode=not args.no_degraded,
        cost_routing=args.cost_routing,
        cost_threshold_s=args.cost_threshold,
        cheap_queue_limit=args.cheap_queue_limit,
        expensive_queue_limit=args.expensive_queue_limit,
        cheap_timeout_s=args.cheap_timeout,
        expensive_timeout_s=args.expensive_timeout,
        expensive_workers=args.expensive_workers,
        approx_enabled=args.approx,
        approx_confidence=args.approx_confidence,
        approx_capacity=args.approx_capacity,
        adaptive_limits=args.adaptive_limits,
        adaptive_target_ms=args.adaptive_target_ms,
        brownout=args.brownout,
        brownout_approx_confidence=args.brownout_approx_confidence,
        brownout_escalate_s=args.brownout_escalate,
        brownout_recover_s=args.brownout_recover,
        slo_enabled=(
            args.slo or args.brownout or args.slo_config is not None
        ),
        slo_config=args.slo_config,
        flight_recorder=args.flight_recorder,
    )
    asyncio.run(serve(config))
    return 0


def _obs_slo_once(client, args: argparse.Namespace) -> int:
    """One ``repro obs slo`` status report; exit 1 while alerts fire."""
    document = client.slo()
    if args.json:
        print(json.dumps(document, indent=2))
        return 0
    if not document.get("enabled"):
        print("SLO engine not enabled (start with --slo)")
        return 1
    objectives = document.get("objectives") or []
    # A router /slo carries per-shard documents instead.
    shard_docs = document.get("shards")
    if not objectives and isinstance(shard_docs, dict):
        for member, doc in sorted(shard_docs.items()):
            for obj in doc.get("objectives") or ():
                objectives.append({**obj, "name": f"{obj['name']}@{member}"})
    rows = []
    for obj in objectives:
        burns = {
            label: row.get("burn_rate")
            for label, row in (obj.get("windows") or {}).items()
        }
        rows.append({
            "objective": obj.get("name"),
            "type": obj.get("type"),
            "state": obj.get("state"),
            "budget": obj.get("budget"),
            "burn": " ".join(
                f"{label}={value}" for label, value in burns.items()
            ),
        })
    print(format_table(rows, title="SLO objectives"))
    # Brownout: present only when the server runs with --brownout
    # (per-shard when the document came from a router fan-in).
    brownouts = []
    if isinstance(document.get("brownout"), dict):
        brownouts.append((None, document["brownout"]))
    elif isinstance(shard_docs, dict):
        for member, doc in sorted(shard_docs.items()):
            if isinstance(doc.get("brownout"), dict):
                brownouts.append((member, doc["brownout"]))
    for member, brownout in brownouts:
        where = f" shard={member}" if member is not None else ""
        print(
            f"brownout{where}: stage={brownout.get('stage')} "
            f"({brownout.get('state')}) "
            f"escalations={brownout.get('escalations')} "
            f"recoveries={brownout.get('recoveries')}"
        )
    alerts = document.get("alerts") or []
    for alert in alerts:
        shard = alert.get("shard")
        where = f" shard={shard}" if shard is not None else ""
        print(
            f"ALERT[{alert.get('severity')}] "
            f"{alert.get('objective')}{where} "
            f"burn={alert.get('burn_rates')}"
        )
    return 0 if not alerts else 1


def cmd_obs(args: argparse.Namespace) -> int:
    """``repro obs tail`` / ``repro obs slo``: triage a live server."""
    from repro.service.client import ServiceClient

    client = ServiceClient(host=args.host, port=args.port)
    if args.obs_command == "slo":
        watch = getattr(args, "watch", None)
        if watch is None:
            return _obs_slo_once(client, args)
        if watch <= 0:
            print("error: --watch period must be positive", file=sys.stderr)
            return 2
        # Polling mode: one status block per period so the overload
        # drill (and an operator mid-incident) can watch burn rates
        # and brownout transitions without a shell loop.
        iterations = getattr(args, "iterations", None)
        polls = 0
        status = 0
        try:
            while iterations is None or polls < iterations:
                if polls:
                    time.sleep(watch)
                print(f"--- poll {polls + 1} ---", flush=True)
                try:
                    status = _obs_slo_once(client, args)
                except (ConnectionError, OSError) as exc:
                    print(f"(unreachable: {exc})", flush=True)
                    status = 1
                polls += 1
        except KeyboardInterrupt:
            pass
        return status

    document = client.debug_requests(
        n=args.n,
        endpoint=args.endpoint,
        outcome=args.outcome,
        min_ms=args.min_ms,
    )
    if args.json:
        print(json.dumps(document, indent=2))
        return 0
    print(
        f"flight recorder: held={document.get('held')} "
        f"recorded={document.get('recorded')} "
        f"dropped={document.get('dropped', '-')}"
    )
    for entry in document.get("requests") or ():
        shard = entry.get("shard")
        where = f" shard={shard}" if shard is not None else ""
        stages = entry.get("stages_ms") or {}
        stage_text = " ".join(
            f"{name}={value}" for name, value in sorted(stages.items())
        )
        print(
            f"#{entry.get('seq')} ts={entry.get('ts'):.3f} "
            f"{entry.get('endpoint')} {entry.get('outcome')} "
            f"http={entry.get('status')} "
            f"{entry.get('latency_ms')}ms served={entry.get('served')}"
            f" class={entry.get('queue_class', '-')}{where}"
            + (f"  [{stage_text}]" if stage_text else "")
        )
    return 0


def cmd_store(args: argparse.Namespace) -> int:
    """``repro store stats``: one server's unified tier-ledger table."""
    from repro.service.client import ServiceClient

    client = ServiceClient(host=args.host, port=args.port)
    metrics = client.metrics()
    tiers = metrics.get("tiers", {})
    # A fabric router reports per-shard snapshots + an aggregate; fall
    # back to the aggregate's tier table so one command covers both.
    if not tiers:
        tiers = metrics.get("aggregate", {}).get("tiers", {})
    if args.json:
        print(json.dumps(
            {"tiers": tiers, "queues": metrics.get("queues", {})}, indent=2
        ))
        return 0
    rows = []
    for name, ledger in sorted(tiers.items()):
        rate = ledger.get("hit_rate")
        rows.append({
            "tier": name,
            "hits": ledger.get("hits", 0),
            "misses": ledger.get("misses", 0),
            "puts": ledger.get("puts", 0),
            "evictions": ledger.get("evictions", 0),
            "size": ledger.get("size", ""),
            "hit_rate": f"{rate:.3f}" if rate is not None else "-",
        })
    print(format_table(rows, title="Store tiers"))
    queues = metrics.get("queues", {})
    for cls, gauges in sorted(queues.items()):
        print(
            f"queue {cls:<10}: pending={gauges.get('pending', 0)} "
            f"limit={gauges.get('limit', 0)} shed={gauges.get('shed', 0)} "
            f"deadline_s={gauges.get('deadline_s')}"
        )
    return 0


def cmd_fabric(args: argparse.Namespace) -> int:
    if args.fabric_command == "compact":
        from repro.util.segdb import SegmentedTuningDatabase

        report = SegmentedTuningDatabase.compact(args.db_dir)
        if args.json:
            print(json.dumps(report, indent=2))
            return 0
        print(f"records          : {report['records']}")
        print(f"segments merged  : {report['segments_merged']}")
        print(f"segments removed : {report['segments_removed']}")
        if report["segments_skipped"]:
            print(
                "segments skipped : "
                + ", ".join(report["segments_skipped"])
                + " (newer schema)"
            )
        return 0

    from repro.service.client import ServiceClient

    client = ServiceClient(host=args.host, port=args.port)
    health = client.healthz()
    metrics = client.metrics() if health.get("http_status") != 0 else {}
    if args.json:
        print(json.dumps({"healthz": health, "metrics": metrics}, indent=2))
        return 0
    print(f"router  : http://{args.host}:{args.port}  "
          f"status={health.get('status')}")
    for member, info in sorted(health.get("shards", {}).items()):
        state = "up" if info.get("up") else "DOWN"
        print(f"shard {member} : {state}  port={info.get('port')}")
    aggregate = metrics.get("aggregate", {})
    if aggregate:
        print(f"requests: {aggregate.get('requests', 0)}  "
              f"steal={aggregate.get('steal')}")
    return 0 if health.get("status") in ("ok", "degraded") else 1


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    args = build_parser().parse_args(argv)
    try:
        if args.command == "suite":
            return cmd_suite(args)
        if args.command == "machines":
            return cmd_machines(args)
        if args.command == "predict":
            return cmd_predict(args)
        if args.command == "tune":
            return cmd_tune(args)
        if args.command == "rank":
            return cmd_rank(args)
        if args.command == "serve":
            return cmd_serve(args)
        if args.command == "obs":
            return cmd_obs(args)
        if args.command == "store":
            return cmd_store(args)
        if args.command == "fabric":
            return cmd_fabric(args)
        return cmd_experiment(args)
    except RequestError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())

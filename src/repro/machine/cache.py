"""Cache level description used by both the ECM model and the simulator."""

from __future__ import annotations

import enum
from dataclasses import dataclass


class WritePolicy(enum.Enum):
    """Write handling of a cache level."""

    WRITE_BACK = "write-back"
    WRITE_THROUGH = "write-through"


@dataclass(frozen=True)
class CacheLevel:
    """One level of a cache hierarchy.

    Parameters
    ----------
    name:
        Human-readable level name, e.g. ``"L1"``.
    size_bytes:
        Capacity of the level as seen by a single core.  For shared
        levels this is the per-core share actually available during a
        saturated run (the convention the ECM model uses).
    line_bytes:
        Cache line size in bytes.
    assoc:
        Set associativity.  ``assoc == size_bytes // line_bytes`` makes
        the level fully associative.
    bytes_per_cycle:
        Sustained transfer bandwidth *from the next-lower level into
        this level* in bytes per core cycle (e.g. 64 B/cy for the
        CLX L1<-L2 path).  Used to convert line counts into cycles.
    write_policy:
        Write-back (default, allocates on write miss) or write-through.
    victim:
        ``True`` for an exclusive/victim cache (AMD Rome L3): lines are
        installed on eviction from the level above, not on fill.
    shared_by:
        Number of cores sharing the physical structure (1 = private).
    load_to_use_latency:
        Latency in cycles of a hit in this level; only used for
        reporting, the throughput model is bandwidth-based.
    """

    name: str
    size_bytes: int
    line_bytes: int
    assoc: int
    bytes_per_cycle: float
    write_policy: WritePolicy = WritePolicy.WRITE_BACK
    victim: bool = False
    shared_by: int = 1
    load_to_use_latency: int = 4

    def __post_init__(self) -> None:
        if self.size_bytes <= 0:
            raise ValueError(f"{self.name}: size_bytes must be positive")
        if self.line_bytes <= 0 or self.size_bytes % self.line_bytes:
            raise ValueError(
                f"{self.name}: size {self.size_bytes} not a multiple of "
                f"line size {self.line_bytes}"
            )
        n_lines = self.size_bytes // self.line_bytes
        if self.assoc <= 0 or n_lines % self.assoc:
            raise ValueError(
                f"{self.name}: associativity {self.assoc} does not divide "
                f"line count {n_lines}"
            )
        if self.bytes_per_cycle <= 0:
            raise ValueError(f"{self.name}: bytes_per_cycle must be positive")

    @property
    def n_lines(self) -> int:
        """Total number of cache lines in the level."""
        return self.size_bytes // self.line_bytes

    @property
    def n_sets(self) -> int:
        """Number of sets (lines / associativity)."""
        return self.n_lines // self.assoc

    def cycles_per_line(self) -> float:
        """Cycles needed to move one cache line across this level's link."""
        return self.line_bytes / self.bytes_per_cycle

    def scaled(self, factor: float) -> "CacheLevel":
        """Return a copy whose capacity is scaled by ``factor``.

        Used by experiments that shrink grids and caches in proportion so
        the exact (but slow) cache simulator stays affordable.  The
        associativity is preserved; the set count shrinks.
        """
        new_lines = max(self.assoc, int(round(self.n_lines * factor)))
        # Round to a multiple of the associativity so sets stay integral.
        new_lines -= new_lines % self.assoc
        new_lines = max(self.assoc, new_lines)
        return CacheLevel(
            name=self.name,
            size_bytes=new_lines * self.line_bytes,
            line_bytes=self.line_bytes,
            assoc=self.assoc,
            bytes_per_cycle=self.bytes_per_cycle,
            write_policy=self.write_policy,
            victim=self.victim,
            shared_by=self.shared_by,
            load_to_use_latency=self.load_to_use_latency,
        )

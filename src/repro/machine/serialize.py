"""Machine model (de)serialization.

YASK ships per-architecture description files; the equivalent here is a
JSON round-trip for :class:`~repro.machine.Machine`, so users can
describe new CPUs without touching code::

    machine = load_machine("my_cpu.json")
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.machine.cache import CacheLevel, WritePolicy
from repro.machine.machine import CoreModel, Machine


def machine_to_dict(machine: Machine) -> dict:
    """Serialise a machine to plain JSON-compatible data."""
    return {
        "name": machine.name,
        "isa": machine.isa,
        "freq_ghz": machine.freq_ghz,
        "cores": machine.cores,
        "cores_per_llc": machine.cores_per_llc,
        "mem_bw_gbs": machine.mem_bw_gbs,
        "mem_bw_core_gbs": machine.mem_bw_core_gbs,
        "core": {
            "simd_bytes": machine.core.simd_bytes,
            "fma_ports": machine.core.fma_ports,
            "add_ports": machine.core.add_ports,
            "mul_ports": machine.core.mul_ports,
            "load_ports": machine.core.load_ports,
            "store_ports": machine.core.store_ports,
            "has_fma": machine.core.has_fma,
        },
        "caches": [
            {
                "name": c.name,
                "size_bytes": c.size_bytes,
                "line_bytes": c.line_bytes,
                "assoc": c.assoc,
                "bytes_per_cycle": c.bytes_per_cycle,
                "write_policy": c.write_policy.value,
                "victim": c.victim,
                "shared_by": c.shared_by,
                "load_to_use_latency": c.load_to_use_latency,
            }
            for c in machine.caches
        ],
    }


def machine_from_dict(data: dict) -> Machine:
    """Rebuild a machine from :func:`machine_to_dict` output."""
    try:
        core = CoreModel(**data["core"])
        caches = tuple(
            CacheLevel(
                name=c["name"],
                size_bytes=c["size_bytes"],
                line_bytes=c["line_bytes"],
                assoc=c["assoc"],
                bytes_per_cycle=c["bytes_per_cycle"],
                write_policy=WritePolicy(c.get("write_policy", "write-back")),
                victim=c.get("victim", False),
                shared_by=c.get("shared_by", 1),
                load_to_use_latency=c.get("load_to_use_latency", 4),
            )
            for c in data["caches"]
        )
        return Machine(
            name=data["name"],
            isa=data["isa"],
            freq_ghz=data["freq_ghz"],
            cores=data["cores"],
            cores_per_llc=data["cores_per_llc"],
            core=core,
            caches=caches,
            mem_bw_gbs=data["mem_bw_gbs"],
            mem_bw_core_gbs=data["mem_bw_core_gbs"],
        )
    except KeyError as exc:
        raise ValueError(f"machine description missing field {exc}") from exc


def save_machine(machine: Machine, path: str | Path) -> None:
    """Write a machine description as JSON."""
    Path(path).write_text(
        json.dumps(machine_to_dict(machine), indent=2) + "\n"
    )


def load_machine(path: str | Path) -> Machine:
    """Load a machine description from JSON."""
    return machine_from_dict(json.loads(Path(path).read_text()))

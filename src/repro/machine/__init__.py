"""Machine models: cache hierarchies and core execution resources.

This subpackage is the substitute for the real Cascade Lake / Rome
testbed used in the paper.  A :class:`~repro.machine.Machine` carries
everything both the analytic ECM model (`repro.ecm`) and the discrete
performance simulator (`repro.perf`) need: cache geometry, per-level
bandwidths, port counts, SIMD width and clock frequency.
"""

from repro.machine.cache import CacheLevel, WritePolicy
from repro.machine.machine import CoreModel, Machine
from repro.machine.presets import (
    PRESETS,
    cascade_lake_sp,
    generic_avx2,
    get_machine,
    rome,
)
from repro.machine.serialize import (
    load_machine,
    machine_from_dict,
    machine_to_dict,
    save_machine,
)

__all__ = [
    "CacheLevel",
    "WritePolicy",
    "CoreModel",
    "Machine",
    "PRESETS",
    "cascade_lake_sp",
    "rome",
    "generic_avx2",
    "get_machine",
    "machine_to_dict",
    "machine_from_dict",
    "save_machine",
    "load_machine",
]

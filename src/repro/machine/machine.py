"""Whole-machine model: core resources + cache hierarchy + memory."""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.machine.cache import CacheLevel


@dataclass(frozen=True)
class CoreModel:
    """Execution resources of one core, as the ECM in-core model sees them.

    All throughputs are *per cycle* and refer to full-width SIMD
    operations.  ``simd_bytes`` is the native vector register width.
    """

    simd_bytes: int
    fma_ports: int
    add_ports: int
    mul_ports: int
    load_ports: int
    store_ports: int
    has_fma: bool = True

    def __post_init__(self) -> None:
        for name in ("simd_bytes", "fma_ports", "load_ports", "store_ports"):
            if getattr(self, name) <= 0:
                raise ValueError(f"CoreModel.{name} must be positive")

    def simd_lanes(self, dtype_bytes: int) -> int:
        """Number of elements of ``dtype_bytes`` per SIMD register."""
        return max(1, self.simd_bytes // dtype_bytes)


@dataclass(frozen=True)
class Machine:
    """A CPU description sufficient for ECM modelling and simulation.

    Parameters
    ----------
    name:
        Identifier, e.g. ``"CascadeLakeSP"``.
    isa:
        Vector ISA label (``"AVX-512"``, ``"AVX2"``); informational.
    freq_ghz:
        Sustained core clock under full load.
    cores:
        Cores per socket / NUMA domain considered by scaling runs.
    cores_per_llc:
        Cores sharing one last-level-cache domain (CLX: whole socket;
        Rome: 4 per CCX).
    core:
        The :class:`CoreModel`.
    caches:
        Ordered list of levels, innermost (L1) first.
    mem_bw_gbs:
        Saturated main-memory bandwidth of the full socket in GB/s.
    mem_bw_core_gbs:
        Bandwidth a single core can draw from memory in GB/s (limits the
        single-core memory term; typically well below ``mem_bw_gbs``).
    """

    name: str
    isa: str
    freq_ghz: float
    cores: int
    cores_per_llc: int
    core: CoreModel
    caches: tuple[CacheLevel, ...] = field(default_factory=tuple)
    mem_bw_gbs: float = 100.0
    mem_bw_core_gbs: float = 15.0

    def __post_init__(self) -> None:
        if self.freq_ghz <= 0:
            raise ValueError("freq_ghz must be positive")
        if self.cores <= 0 or self.cores_per_llc <= 0:
            raise ValueError("core counts must be positive")
        if not self.caches:
            raise ValueError("a machine needs at least one cache level")
        line = self.caches[0].line_bytes
        if any(c.line_bytes != line for c in self.caches):
            raise ValueError("all cache levels must share one line size")
        sizes = [c.size_bytes for c in self.caches]
        if sizes != sorted(sizes):
            raise ValueError("cache levels must be ordered small to large")

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------
    @property
    def line_bytes(self) -> int:
        """Cache line size (uniform across levels)."""
        return self.caches[0].line_bytes

    @property
    def n_levels(self) -> int:
        """Number of cache levels."""
        return len(self.caches)

    def level(self, name: str) -> CacheLevel:
        """Look a cache level up by name (``"L1"`` ...)."""
        for cache in self.caches:
            if cache.name == name:
                return cache
        raise KeyError(f"{self.name} has no cache level {name!r}")

    def mem_cycles_per_line(self, n_cores: int = 1) -> float:
        """Core cycles to move one line from memory, at ``n_cores`` active.

        A single core is limited by ``mem_bw_core_gbs``; multiple cores
        share ``mem_bw_gbs``.
        """
        if n_cores <= 0:
            raise ValueError("n_cores must be positive")
        per_core_bw = min(self.mem_bw_core_gbs, self.mem_bw_gbs / n_cores)
        bytes_per_cycle = per_core_bw / self.freq_ghz
        return self.line_bytes / bytes_per_cycle

    def mem_bandwidth_bytes_per_cycle(self) -> float:
        """Saturated socket memory bandwidth in bytes per core cycle."""
        return self.mem_bw_gbs / self.freq_ghz

    def scaled_caches(self, factor: float) -> "Machine":
        """Machine copy with every cache capacity scaled by ``factor``.

        Bandwidths, ports and frequencies are untouched; see DESIGN.md
        (experiments shrink grid and caches together to keep the exact
        cache simulator affordable).
        """
        return replace(
            self,
            name=f"{self.name}(x{factor:g})",
            caches=tuple(c.scaled(factor) for c in self.caches),
        )

    def summary_rows(self) -> list[tuple[str, str]]:
        """(key, value) rows for the testbed table (experiment T1)."""
        rows = [
            ("Microarchitecture", self.name),
            ("ISA", self.isa),
            ("Clock (GHz)", f"{self.freq_ghz:.2f}"),
            ("Cores", str(self.cores)),
            ("Cores per LLC domain", str(self.cores_per_llc)),
            ("SIMD width (bytes)", str(self.core.simd_bytes)),
        ]
        for cache in self.caches:
            kind = "victim" if cache.victim else cache.write_policy.value
            rows.append(
                (
                    f"{cache.name} (per core share)",
                    f"{cache.size_bytes // 1024} KiB, {cache.assoc}-way, "
                    f"{cache.bytes_per_cycle:g} B/cy, {kind}",
                )
            )
        rows.append(("Memory BW (GB/s)", f"{self.mem_bw_gbs:.0f}"))
        rows.append(("Single-core mem BW (GB/s)", f"{self.mem_bw_core_gbs:.0f}"))
        return rows

"""Predefined machine models.

The Cascade Lake SP and AMD Rome presets mirror the two evaluation
platforms of the paper; numbers follow the publicly documented
microarchitectural parameters that the ECM literature uses for these
chips.  ``generic_avx2`` is a small, fast model for unit tests.
"""

from __future__ import annotations

from repro.machine.cache import CacheLevel, WritePolicy
from repro.machine.machine import CoreModel, Machine

KIB = 1024
MIB = 1024 * KIB


def cascade_lake_sp() -> Machine:
    """Intel Xeon Gold 6248 "Cascade Lake SP" (20 cores, AVX-512).

    L3 is inclusive of nothing (non-inclusive since Skylake-SP) but
    still fill-on-miss; we model it as a plain write-back level with the
    per-core 1.375 MiB slice share.
    """
    return Machine(
        name="CascadeLakeSP",
        isa="AVX-512",
        freq_ghz=2.5,
        cores=20,
        cores_per_llc=20,
        core=CoreModel(
            simd_bytes=64,
            fma_ports=2,
            add_ports=2,
            mul_ports=2,
            load_ports=2,
            store_ports=1,
        ),
        caches=(
            CacheLevel(
                name="L1",
                size_bytes=32 * KIB,
                line_bytes=64,
                assoc=8,
                bytes_per_cycle=64.0,
                load_to_use_latency=4,
            ),
            CacheLevel(
                name="L2",
                size_bytes=1 * MIB,
                line_bytes=64,
                assoc=16,
                bytes_per_cycle=32.0,
                load_to_use_latency=14,
            ),
            CacheLevel(
                name="L3",
                size_bytes=1408 * KIB,  # 27.5 MiB / 20 cores
                line_bytes=64,
                assoc=11,
                bytes_per_cycle=16.0,
                shared_by=20,
                load_to_use_latency=50,
            ),
        ),
        mem_bw_gbs=115.0,
        mem_bw_core_gbs=14.5,
    )


def rome() -> Machine:
    """AMD EPYC 7662 "Rome" (64 cores, AVX2, victim L3 per 4-core CCX)."""
    return Machine(
        name="Rome",
        isa="AVX2",
        freq_ghz=2.0,
        cores=64,
        cores_per_llc=4,
        core=CoreModel(
            simd_bytes=32,
            fma_ports=2,
            add_ports=2,
            mul_ports=2,
            load_ports=2,
            store_ports=1,
        ),
        caches=(
            CacheLevel(
                name="L1",
                size_bytes=32 * KIB,
                line_bytes=64,
                assoc=8,
                bytes_per_cycle=64.0,
                load_to_use_latency=4,
            ),
            CacheLevel(
                name="L2",
                size_bytes=512 * KIB,
                line_bytes=64,
                assoc=8,
                bytes_per_cycle=32.0,
                load_to_use_latency=12,
            ),
            CacheLevel(
                name="L3",
                size_bytes=4 * MIB,  # 16 MiB per CCX / 4 cores
                line_bytes=64,
                assoc=16,
                bytes_per_cycle=16.0,
                victim=True,
                shared_by=4,
                load_to_use_latency=40,
            ),
        ),
        mem_bw_gbs=205.0,
        mem_bw_core_gbs=22.0,
    )


def generic_avx2() -> Machine:
    """A small two-level machine for fast, exact unit tests."""
    return Machine(
        name="GenericAVX2",
        isa="AVX2",
        freq_ghz=2.0,
        cores=4,
        cores_per_llc=4,
        core=CoreModel(
            simd_bytes=32,
            fma_ports=2,
            add_ports=1,
            mul_ports=1,
            load_ports=2,
            store_ports=1,
        ),
        caches=(
            CacheLevel(
                name="L1",
                size_bytes=4 * KIB,
                line_bytes=64,
                assoc=4,
                bytes_per_cycle=32.0,
            ),
            CacheLevel(
                name="L2",
                size_bytes=32 * KIB,
                line_bytes=64,
                assoc=8,
                bytes_per_cycle=16.0,
                write_policy=WritePolicy.WRITE_BACK,
            ),
        ),
        mem_bw_gbs=40.0,
        mem_bw_core_gbs=12.0,
    )


PRESETS = {
    "clx": cascade_lake_sp,
    "cascadelake": cascade_lake_sp,
    "rome": rome,
    "generic": generic_avx2,
}


def get_machine(name: str) -> Machine:
    """Look a preset machine up by (case-insensitive) short name."""
    key = name.lower()
    if key not in PRESETS:
        raise KeyError(
            f"unknown machine {name!r}; choose from {sorted(PRESETS)}"
        )
    return PRESETS[key]()

"""repro — reproduction of *YaskSite: Stencil Optimization Techniques
Applied to Explicit ODE Methods on Modern Architectures* (CGO 2021).

Public API highlights:

* :class:`repro.YaskSite` — the tool facade (compile, predict, tune).
* :mod:`repro.stencil` — stencil DSL and the evaluation suite.
* :mod:`repro.ecm` — the Execution-Cache-Memory analytic model.
* :mod:`repro.cachesim` / :mod:`repro.perf` — the exact simulation
  substrate standing in for the paper's hardware testbed.
* :mod:`repro.ode` / :mod:`repro.offsite` — explicit ODE methods and
  the Offsite offline tuner integration.

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record.
"""

from repro.core import YaskSite
from repro.codegen import KernelPlan, compile_kernel
from repro.machine import Machine, get_machine
from repro.stencil import StencilSpec, get_stencil, STENCIL_SUITE

__version__ = "1.0.0"

__all__ = [
    "YaskSite",
    "KernelPlan",
    "compile_kernel",
    "Machine",
    "get_machine",
    "StencilSpec",
    "get_stencil",
    "STENCIL_SUITE",
    "__version__",
]

"""Generic named-field container in one simulated address space.

Generalises :class:`~repro.grid.GridSet` (which is bound to a single
stencil spec) to arbitrary field-name collections — used by multi-
equation solutions and by the Offsite variant kernels.
"""

from __future__ import annotations

import numpy as np

from repro.grid.grid import Grid


class FieldSet:
    """Named halo'd fields placed back to back, page aligned."""

    PAGE = 4096

    def __init__(
        self,
        names: tuple[str, ...] | list[str],
        interior_shape: tuple[int, ...],
        halo: int,
        dtype_bytes: int = 8,
    ) -> None:
        if not names:
            raise ValueError("FieldSet needs at least one field")
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate field names in {names}")
        self.interior_shape = tuple(interior_shape)
        self.halo = halo
        self._grids: dict[str, Grid] = {}
        addr = 0
        for name in names:
            grid = Grid(
                name=name,
                interior_shape=self.interior_shape,
                halo=halo,
                dtype_bytes=dtype_bytes,
                base_addr=addr,
            )
            self._grids[name] = grid
            addr += grid.footprint_bytes
            addr += (-addr) % self.PAGE

    def __getitem__(self, name: str) -> Grid:
        return self._grids[name]

    def __contains__(self, name: str) -> bool:
        return name in self._grids

    def __iter__(self):
        return iter(self._grids.values())

    def __len__(self) -> int:
        return len(self._grids)

    @property
    def names(self) -> tuple[str, ...]:
        """Field names in address order."""
        return tuple(self._grids)

    def arrays(self) -> dict[str, np.ndarray]:
        """Name -> padded ndarray mapping (for kernel invocation)."""
        return {g.name: g.data for g in self}

    def randomize(self, seed: int = 0) -> None:
        """Deterministically fill every field."""
        rng = np.random.default_rng(seed)
        for grid in self:
            grid.fill_random(rng)

    @property
    def total_bytes(self) -> int:
        """Aggregate padded footprint."""
        return sum(g.footprint_bytes for g in self)

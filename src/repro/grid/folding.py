"""Vector folding descriptors (YASK's signature data layout trick).

A *fold* packs a small N-d brick of grid points into one SIMD vector
(e.g. 4x2x2 doubles in a 512-bit register instead of 1x1x8).  Folding
does not change the mathematical result, so our executable kernels stay
unfolded; the fold matters for the *in-core* ECM term, where it trades
unaligned loads along x for cross-vector shuffles.  The ECM in-core
model consumes the descriptor.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import prod

from repro.machine.machine import CoreModel


@dataclass(frozen=True)
class Fold:
    """SIMD fold shape, slowest axis first (like grid shapes)."""

    shape: tuple[int, ...]

    def __post_init__(self) -> None:
        if not self.shape or any(s <= 0 for s in self.shape):
            raise ValueError(f"invalid fold shape {self.shape}")

    @property
    def points(self) -> int:
        """Grid points per SIMD vector."""
        return prod(self.shape)

    @property
    def is_inline(self) -> bool:
        """True for the trivial 1x...xV fold (unit-stride vectorisation)."""
        return all(s == 1 for s in self.shape[:-1])

    def validate(self, core: CoreModel, dtype_bytes: int, dim: int) -> None:
        """Check the fold fits the machine's registers and the grid rank."""
        if len(self.shape) != dim:
            raise ValueError(
                f"fold rank {len(self.shape)} != stencil rank {dim}"
            )
        lanes = core.simd_lanes(dtype_bytes)
        if self.points != lanes:
            raise ValueError(
                f"fold {self.shape} packs {self.points} points but the "
                f"machine has {lanes} SIMD lanes"
            )

    def shuffle_factor(self, radius: int) -> float:
        """Relative in-core overhead of neighbour gathering, >= 1.

        An inline fold needs one unaligned load per x-neighbour; a
        multi-dim fold replaces some of those with cheaper in-register
        permutes but pays setup shuffles.  The factor below reproduces
        the empirical YASK behaviour that folding helps for radius >= 2
        stars and is roughly neutral for 7-point stencils.
        """
        if self.is_inline:
            return 1.0 + 0.05 * radius
        return 1.0 + 0.02 * radius + 0.03 * (len(self.shape) - 1)


def default_fold(core: CoreModel, dtype_bytes: int, dim: int) -> Fold:
    """YASK-style default fold for the machine's SIMD width.

    512-bit doubles in 3D get 4x2x2 would be (z,y,x)=(2,2,2)? YASK uses
    x*y = 4x4 for floats; for doubles it defaults to (z,y,x) = (2,2,2)
    only when 8 lanes are available, otherwise an inline fold.
    """
    lanes = core.simd_lanes(dtype_bytes)
    if dim >= 3 and lanes == 8:
        return Fold((2, 2, 2))
    if dim >= 2 and lanes == 4:
        return Fold(tuple([1] * (dim - 2) + [2, 2]))
    return Fold(tuple([1] * (dim - 1) + [lanes]))

"""Halo'd grids backed by NumPy arrays plus a shared address space."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.grid.layout import Layout
from repro.stencil.spec import StencilSpec


@dataclass
class Grid:
    """An N-d field with a symmetric halo.

    ``data`` holds the padded array; ``interior`` is the writable view
    excluding halos.  Addresses for the cache simulator come from the
    attached :class:`~repro.grid.layout.Layout`.
    """

    name: str
    interior_shape: tuple[int, ...]
    halo: int
    dtype_bytes: int = 8
    base_addr: int = 0
    data: np.ndarray = field(init=False, repr=False)
    layout: Layout = field(init=False)

    def __post_init__(self) -> None:
        if not self.name.isidentifier():
            raise ValueError(f"grid name {self.name!r} is not an identifier")
        if self.halo < 0:
            raise ValueError("halo must be non-negative")
        if any(s <= 0 for s in self.interior_shape):
            raise ValueError(f"invalid interior shape {self.interior_shape}")
        padded = tuple(s + 2 * self.halo for s in self.interior_shape)
        dtype = np.float64 if self.dtype_bytes == 8 else np.float32
        self.data = np.zeros(padded, dtype=dtype)
        self.layout = Layout(padded, self.dtype_bytes, self.base_addr)

    @property
    def dim(self) -> int:
        """Number of spatial axes."""
        return len(self.interior_shape)

    @property
    def padded_shape(self) -> tuple[int, ...]:
        """Shape including halos."""
        return self.data.shape

    @property
    def interior(self) -> np.ndarray:
        """Writable view of the interior (no halos)."""
        sl = tuple(slice(self.halo, self.halo + s) for s in self.interior_shape)
        return self.data[sl]

    def shifted(self, offsets: tuple[int, ...]) -> np.ndarray:
        """Interior-shaped view shifted by ``offsets`` (reads into halo)."""
        if len(offsets) != self.dim:
            raise ValueError(f"offset rank {len(offsets)} != grid rank {self.dim}")
        sl = []
        for axis, off in enumerate(offsets):
            lo = self.halo + off
            hi = lo + self.interior_shape[axis]
            if lo < 0 or hi > self.padded_shape[axis]:
                raise ValueError(
                    f"offset {offsets} exceeds halo {self.halo} on axis {axis}"
                )
            sl.append(slice(lo, hi))
        return self.data[tuple(sl)]

    def fill_random(self, rng: np.random.Generator) -> None:
        """Fill interior *and* halo with reproducible random values."""
        self.data[...] = rng.standard_normal(self.padded_shape)

    @property
    def footprint_bytes(self) -> int:
        """Padded footprint in bytes."""
        return self.layout.size_bytes


class GridSet:
    """All grids a stencil kernel touches, in one simulated address space.

    Grids are placed back to back, each aligned to a 4 KiB page, so that
    cache-set conflicts between arrays are represented realistically.
    """

    PAGE = 4096

    def __init__(
        self,
        spec: StencilSpec,
        interior_shape: tuple[int, ...],
        extra_halo: int = 0,
    ) -> None:
        if len(interior_shape) != spec.dim:
            raise ValueError(
                f"grid rank {len(interior_shape)} != stencil rank {spec.dim}"
            )
        self.spec = spec
        self.interior_shape = tuple(interior_shape)
        halo = spec.radius + extra_halo
        self._grids: dict[str, Grid] = {}
        addr = 0
        for name in spec.grids:
            grid = Grid(
                name=name,
                interior_shape=self.interior_shape,
                halo=halo,
                dtype_bytes=spec.dtype_bytes,
                base_addr=addr,
            )
            self._grids[name] = grid
            addr += grid.footprint_bytes
            addr += (-addr) % self.PAGE

    def __getitem__(self, name: str) -> Grid:
        return self._grids[name]

    def __iter__(self):
        return iter(self._grids.values())

    def __len__(self) -> int:
        return len(self._grids)

    @property
    def names(self) -> tuple[str, ...]:
        """Grid names in address order."""
        return tuple(self._grids)

    @property
    def output(self) -> Grid:
        """The written grid."""
        return self._grids[self.spec.output]

    @property
    def total_bytes(self) -> int:
        """Aggregate padded footprint."""
        return sum(g.footprint_bytes for g in self)

    def randomize(self, seed: int = 0) -> None:
        """Deterministically fill every grid with random data."""
        rng = np.random.default_rng(seed)
        for grid in self:
            grid.fill_random(rng)

    def swap_in_out(self) -> None:
        """Exchange the buffers of the output grid and the main input.

        Implements the double-buffered Jacobi time loop without copies;
        only the NumPy buffers swap, addresses stay with the names so
        simulated streams stay meaningful.
        """
        main_in = max(
            self.spec.offsets, key=lambda g: (len(self.spec.offsets[g]), g)
        )
        out = self._grids[self.spec.output]
        src = self._grids[main_in]
        out.data, src.data = src.data, out.data

"""Row-major memory layout with explicit strides and byte addressing.

The cache simulator needs real (byte-granular) addresses for every grid
access; :class:`Layout` supplies them.  The last axis is the unit-stride
("x") axis throughout the project, matching YASK's default layout.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class Layout:
    """Row-major layout of a padded N-d array.

    Parameters
    ----------
    shape:
        Padded shape (interior + halos), slowest axis first.
    dtype_bytes:
        Element width in bytes.
    base_addr:
        Byte address of element (0, ..., 0); lets several grids live in
        one simulated address space without aliasing.
    """

    shape: tuple[int, ...]
    dtype_bytes: int = 8
    base_addr: int = 0

    def __post_init__(self) -> None:
        if not self.shape or any(s <= 0 for s in self.shape):
            raise ValueError(f"invalid shape {self.shape}")
        if self.dtype_bytes not in (4, 8):
            raise ValueError("dtype_bytes must be 4 or 8")
        if self.base_addr < 0:
            raise ValueError("base_addr must be non-negative")

    @property
    def dim(self) -> int:
        """Number of axes."""
        return len(self.shape)

    @property
    def strides(self) -> tuple[int, ...]:
        """Element strides, slowest axis first (last axis stride 1)."""
        strides = [1] * self.dim
        for axis in range(self.dim - 2, -1, -1):
            strides[axis] = strides[axis + 1] * self.shape[axis + 1]
        return tuple(strides)

    @property
    def n_elements(self) -> int:
        """Total padded element count."""
        return int(np.prod(self.shape))

    @property
    def size_bytes(self) -> int:
        """Total footprint in bytes."""
        return self.n_elements * self.dtype_bytes

    def element_addr(self, index: tuple[int, ...]) -> int:
        """Byte address of one element."""
        if len(index) != self.dim:
            raise ValueError(f"index {index} has wrong rank for {self.shape}")
        linear = sum(i * s for i, s in zip(index, self.strides))
        return self.base_addr + linear * self.dtype_bytes

    def row_addresses(
        self, index_prefix: tuple[int, ...], x_start: int, x_stop: int
    ) -> np.ndarray:
        """Byte addresses of the contiguous run ``[x_start, x_stop)``.

        ``index_prefix`` fixes every axis except the unit-stride one.
        Returned as an int64 array, one entry per element.
        """
        if len(index_prefix) != self.dim - 1:
            raise ValueError("index_prefix must fix all but the last axis")
        start = self.element_addr(index_prefix + (x_start,))
        n = x_stop - x_start
        if n <= 0:
            return np.empty(0, dtype=np.int64)
        return start + np.arange(n, dtype=np.int64) * self.dtype_bytes

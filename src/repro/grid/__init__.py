"""Grid substrate: halo'd N-d arrays, memory layout and vector folding."""

from repro.grid.layout import Layout
from repro.grid.grid import Grid, GridSet
from repro.grid.folding import Fold, default_fold
from repro.grid.fields import FieldSet
from repro.grid.boundary import (
    BoundaryCondition,
    Dirichlet,
    Neumann,
    Periodic,
    time_loop_with_bc,
)

__all__ = [
    "Layout",
    "Grid",
    "GridSet",
    "FieldSet",
    "Fold",
    "default_fold",
    "BoundaryCondition",
    "Dirichlet",
    "Neumann",
    "Periodic",
    "time_loop_with_bc",
]

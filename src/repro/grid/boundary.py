"""Boundary conditions: halo-filling policies for time loops.

The sweep kernels read the halo unconditionally; a boundary condition
is therefore just a halo-filling rule applied before each sweep:

* :class:`Dirichlet` — constant value on the boundary;
* :class:`Neumann` — zero-gradient (mirror the edge plane);
* :class:`Periodic` — wrap-around copies of the opposite edge.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.grid.grid import Grid


class BoundaryCondition:
    """Base class: ``apply(grid)`` fills the halo in place."""

    def apply(self, grid: Grid) -> None:
        """Fill the grid's halo according to the policy."""
        raise NotImplementedError


@dataclass(frozen=True)
class Dirichlet(BoundaryCondition):
    """Constant-value boundary (default 0: homogeneous walls)."""

    value: float = 0.0

    def apply(self, grid: Grid) -> None:
        halo = grid.halo
        if halo == 0:
            return
        data = grid.data
        for axis in range(grid.dim):
            lo = [slice(None)] * grid.dim
            hi = [slice(None)] * grid.dim
            lo[axis] = slice(0, halo)
            hi[axis] = slice(data.shape[axis] - halo, None)
            data[tuple(lo)] = self.value
            data[tuple(hi)] = self.value


@dataclass(frozen=True)
class Neumann(BoundaryCondition):
    """Zero-gradient boundary: halo mirrors the adjacent interior."""

    def apply(self, grid: Grid) -> None:
        halo = grid.halo
        if halo == 0:
            return
        data = grid.data
        n = data.shape
        for axis in range(grid.dim):
            for k in range(halo):
                lo_dst = [slice(None)] * grid.dim
                lo_src = [slice(None)] * grid.dim
                lo_dst[axis] = slice(k, k + 1)
                lo_src[axis] = slice(2 * halo - 1 - k, 2 * halo - k)
                data[tuple(lo_dst)] = data[tuple(lo_src)]
                hi_dst = [slice(None)] * grid.dim
                hi_src = [slice(None)] * grid.dim
                hi_dst[axis] = slice(n[axis] - 1 - k, n[axis] - k)
                hi_src[axis] = slice(
                    n[axis] - 2 * halo + k, n[axis] - 2 * halo + k + 1
                )
                data[tuple(hi_dst)] = data[tuple(hi_src)]


@dataclass(frozen=True)
class Periodic(BoundaryCondition):
    """Wrap-around boundary: halo copies the opposite interior edge."""

    def apply(self, grid: Grid) -> None:
        halo = grid.halo
        if halo == 0:
            return
        data = grid.data
        n = data.shape
        for axis in range(grid.dim):
            lo_dst = [slice(None)] * grid.dim
            lo_src = [slice(None)] * grid.dim
            lo_dst[axis] = slice(0, halo)
            lo_src[axis] = slice(n[axis] - 2 * halo, n[axis] - halo)
            data[tuple(lo_dst)] = data[tuple(lo_src)]
            hi_dst = [slice(None)] * grid.dim
            hi_src = [slice(None)] * grid.dim
            hi_dst[axis] = slice(n[axis] - halo, None)
            hi_src[axis] = slice(halo, 2 * halo)
            data[tuple(hi_dst)] = data[tuple(hi_src)]


def time_loop_with_bc(
    kernel,
    grids,
    bc: BoundaryCondition,
    steps: int,
    params: dict[str, float] | None = None,
) -> None:
    """Jacobi time loop applying ``bc`` to the input grid each step.

    ``kernel`` is a :class:`~repro.codegen.CompiledKernel`; ``grids``
    the matching :class:`~repro.grid.GridSet`.
    """
    if steps < 0:
        raise ValueError("steps must be non-negative")
    spec = kernel.spec
    main_in = max(spec.offsets, key=lambda g: (len(spec.offsets[g]), g))
    for _ in range(steps):
        bc.apply(grids[main_in])
        kernel.run(grids, params)
        grids.swap_in_out()

"""The offline tuner: predict, rank, validate, account costs."""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from math import prod

from repro import obs
from repro.autotune.checkpoint import JsonCheckpoint
from repro.cachesim.memo import content_digest, default_traffic_cache
from repro.codegen.plan import KernelPlan
from repro.machine.machine import Machine
from repro.offsite.composite import (
    VariantGrids,
    measure_kernel,
    predict_kernel,
    select_kernel_block,
)
from repro.offsite.variants import Variant, pirk_variants
from repro.ode.pirk import PIRK
from repro.ode.tableau import (
    gauss_legendre,
    lobatto_iiia,
    lobatto_iiic,
    radau_ia,
    radau_iia,
)


@dataclass(frozen=True)
class VariantTiming:
    """Predicted and (optionally) measured step time of one variant."""

    variant: str
    predicted_s: float
    measured_s: float | None
    sweeps_per_step: int
    mem_bytes_per_lup: float

    @property
    def error_pct(self) -> float | None:
        """Signed prediction error in percent of the measurement."""
        if self.measured_s is None or self.measured_s == 0:
            return None
        return 100.0 * (self.predicted_s - self.measured_s) / self.measured_s


@dataclass
class RankingReport:
    """Outcome of one Offsite tuning run (experiment F5 rows)."""

    method: str
    ivp: str
    machine: str
    timings: list[VariantTiming]
    kendall_tau: float | None
    top1_hit: bool | None
    predict_seconds: float
    measure_seconds: float
    traffic_cache_hits: int = 0
    traffic_cache_misses: int = 0
    #: Per-store-tier split of the lookups above (memory LRU over the
    #: optional disk tier); zeros when no disk tier is configured.
    traffic_mem_hits: int = 0
    traffic_mem_misses: int = 0
    traffic_disk_hits: int = 0
    traffic_disk_misses: int = 0
    #: Measurements restored from a checkpoint instead of re-run (not
    #: serialized — a resumed run's report is otherwise identical).
    resumed_variants: int = 0

    def best_predicted(self) -> VariantTiming:
        """The variant the tuner would deploy."""
        return min(self.timings, key=lambda v: v.predicted_s)

    def best_measured(self) -> VariantTiming:
        """The variant an oracle with measurements would deploy."""
        measured = [v for v in self.timings if v.measured_s is not None]
        if not measured:
            raise ValueError("no measurements available")
        return min(measured, key=lambda v: v.measured_s)


def kendall_tau(order_a: list[str], order_b: list[str]) -> float:
    """Kendall rank correlation between two orderings of the same items."""
    if sorted(order_a) != sorted(order_b):
        raise ValueError("orderings must contain the same items")
    n = len(order_a)
    if n < 2:
        return 1.0
    pos_b = {item: i for i, item in enumerate(order_b)}
    concordant = 0
    discordant = 0
    for i in range(n):
        for j in range(i + 1, n):
            if pos_b[order_a[i]] < pos_b[order_a[j]]:
                concordant += 1
            else:
                discordant += 1
    return (concordant - discordant) / (n * (n - 1) / 2)


class OffsiteTuner:
    """Rank PIRK implementation variants for a grid IVP on a machine."""

    def __init__(
        self,
        machine: Machine,
        block: tuple[int, ...] | str | None = None,
        capacity_factor: float = 1.0,
    ) -> None:
        """``block`` may be an explicit tuple, ``None`` (whole grid),
        or ``"auto"`` for per-kernel analytic selection."""
        self.machine = machine
        self.block = block
        self.capacity_factor = capacity_factor

    def _plan_for(self, kernel, grid_shape: tuple[int, ...], dim: int) -> KernelPlan:
        if self.block == "auto":
            return select_kernel_block(
                kernel, grid_shape, self.machine,
                dim=dim, capacity_factor=self.capacity_factor,
            )
        if isinstance(self.block, str):
            raise ValueError(f"unknown block policy {self.block!r}")
        return KernelPlan(block=self.block or tuple(grid_shape))

    def _grid_names(self, variant: Variant) -> tuple[str, ...]:
        names = set()
        for kernel, _ in variant.kernels:
            names.update(kernel.grids)
        return tuple(sorted(names))

    def _open_checkpoint(
        self,
        checkpoint,
        method: PIRK,
        grid_shape: tuple[int, ...],
        dim: int,
        radius: int,
        seed: int,
    ) -> JsonCheckpoint | None:
        """Resolve a ``checkpoint`` argument (path or instance).

        The fingerprint covers everything a measured step time depends
        on, so a checkpoint from a different method/machine/grid/seed
        run is ignored rather than resumed from.
        """
        if checkpoint is None or isinstance(checkpoint, JsonCheckpoint):
            return checkpoint
        if isinstance(checkpoint, (str, os.PathLike)):
            fingerprint = content_digest(
                {
                    "kind": "offsite-checkpoint",
                    "method": method.name,
                    "machine": self.machine.name,
                    "grid": list(grid_shape),
                    "dim": dim,
                    "radius": radius,
                    "seed": seed,
                    "block": list(self.block)
                    if isinstance(self.block, tuple)
                    else self.block,
                    "capacity_factor": self.capacity_factor,
                }
            )
            return JsonCheckpoint(checkpoint, fingerprint)
        raise TypeError(
            f"checkpoint must be a path or JsonCheckpoint, "
            f"got {checkpoint!r}"
        )

    def tune(
        self,
        method: PIRK,
        grid_shape: tuple[int, ...],
        validate: bool = True,
        dim: int | None = None,
        radius: int = 1,
        seed: int = 0,
        ivp_name: str | None = None,
        checkpoint=None,
    ) -> RankingReport:
        """Predict (and optionally measure) every variant; rank them.

        The step time of a variant is ``m`` corrector iterations plus
        the final b-combination sweep, all scaled by the grid size.
        ``checkpoint`` (a path or :class:`JsonCheckpoint`) persists
        per-variant measurements so an interrupted validation run can
        resume; predictions are cheap and always recomputed.
        """
        dim = dim if dim is not None else len(grid_shape)
        s = method.stages
        m = method.m
        lups = prod(grid_shape)
        variants = pirk_variants(s, dim=dim, radius=radius)

        t0 = time.perf_counter()
        predicted: dict[str, tuple[float, float]] = {}
        final_kernel = _final_lc_kernel(s, dim, radius)
        final_plan = self._plan_for(final_kernel, grid_shape, dim)
        with obs.span("offsite.predict") as sp:
            sp.add(variants=len(variants))
            for var in variants:
                cycles = 0.0
                mem_bytes = 0.0
                for kernel, count in var.kernels:
                    pred = predict_kernel(
                        kernel,
                        grid_shape,
                        self._plan_for(kernel, grid_shape, dim),
                        self.machine,
                        dim=dim,
                        capacity_factor=self.capacity_factor,
                    )
                    cycles += pred.cycles_per_lup * count
                    mem_bytes += pred.mem_bytes_per_lup * count
                # m corrector iterations + the final b-combination sweep.
                final_lc = predict_kernel(
                    final_kernel,
                    grid_shape,
                    final_plan,
                    self.machine,
                    dim=dim,
                    capacity_factor=self.capacity_factor,
                )
                total_cycles = cycles * m + final_lc.cycles_per_lup
                predicted[var.name] = (
                    total_cycles * lups / (self.machine.freq_ghz * 1e9),
                    mem_bytes,
                )
        predict_seconds = time.perf_counter() - t0

        measured: dict[str, float] = {}
        resumed = 0
        t0 = time.perf_counter()
        traffic_cache = default_traffic_cache()
        hits0, misses0 = traffic_cache.hits, traffic_cache.misses
        tiers0 = traffic_cache.tier_counts()
        if validate:
            cp = self._open_checkpoint(
                checkpoint, method, grid_shape, dim, radius, seed
            )
            with obs.span("offsite.measure") as sp:
                sp.add(variants=len(variants))
                for i, var in enumerate(variants):
                    if cp is not None:
                        entry = cp.get_raw(var.name)
                        if isinstance(entry, dict) and isinstance(
                            entry.get("seconds"), (int, float)
                        ):
                            measured[var.name] = float(entry["seconds"])
                            resumed += 1
                            continue
                    cycles = 0.0
                    names = self._grid_names(var)
                    grids = VariantGrids(names, grid_shape, halo=radius)
                    for kernel, count in var.kernels:
                        cy, _ = measure_kernel(
                            kernel, grids,
                            self._plan_for(kernel, grid_shape, dim),
                            self.machine, dim=dim, seed=seed + i,
                        )
                        cycles += cy * count
                    fg = VariantGrids(
                        tuple(sorted(set(final_kernel.grids))), grid_shape,
                        halo=radius,
                    )
                    cy, _ = measure_kernel(
                        final_kernel, fg, final_plan, self.machine,
                        dim=dim, seed=seed + 100 + i,
                    )
                    total = cycles * m + cy
                    measured[var.name] = (
                        total * lups / (self.machine.freq_ghz * 1e9)
                    )
                    if cp is not None:
                        cp.put_raw(
                            var.name, {"seconds": measured[var.name]}
                        )
                if resumed:
                    sp.add(resumed=resumed)
            if cp is not None:
                cp.flush()
        measure_seconds = time.perf_counter() - t0

        timings = [
            VariantTiming(
                variant=var.name,
                predicted_s=predicted[var.name][0],
                measured_s=measured.get(var.name),
                sweeps_per_step=var.sweeps_per_iteration() * m + 1,
                mem_bytes_per_lup=predicted[var.name][1],
            )
            for var in variants
        ]
        tau = None
        top1 = None
        if validate:
            pred_order = sorted(predicted, key=lambda v: predicted[v][0])
            meas_order = sorted(measured, key=lambda v: measured[v])
            tau = kendall_tau(pred_order, meas_order)
            top1 = pred_order[0] == meas_order[0]
        tiers1 = traffic_cache.tier_counts()
        mem_h, mem_m, disk_h, disk_m = (
            b - a for a, b in zip(tiers0, tiers1)
        )
        return RankingReport(
            method=method.name,
            ivp=ivp_name or f"grid{grid_shape}",
            machine=self.machine.name,
            timings=timings,
            kendall_tau=tau,
            top1_hit=top1,
            predict_seconds=predict_seconds,
            measure_seconds=measure_seconds,
            traffic_cache_hits=traffic_cache.hits - hits0,
            traffic_cache_misses=traffic_cache.misses - misses0,
            traffic_mem_hits=mem_h,
            traffic_mem_misses=mem_m,
            traffic_disk_hits=disk_h,
            traffic_disk_misses=disk_m,
            resumed_variants=resumed,
        )


#: Implicit tableau families a PIRK method can be built from by name
#: (the string keys are what the CLI/service accept).
TABLEAU_FAMILIES = {
    "radau_iia": radau_iia,
    "radau_ia": radau_ia,
    "gauss_legendre": gauss_legendre,
    "lobatto_iiia": lobatto_iiia,
    "lobatto_iiic": lobatto_iiic,
}


def build_pirk(family: str, stages: int, corrector_steps: int) -> PIRK:
    """Construct a PIRK method from a named implicit tableau family."""
    try:
        factory = TABLEAU_FAMILIES[family]
    except KeyError:
        raise KeyError(
            f"unknown tableau family {family!r}; "
            f"choose from {sorted(TABLEAU_FAMILIES)}"
        ) from None
    return PIRK(factory(stages), corrector_steps)


def rank_variants(
    family: str,
    stages: int,
    corrector_steps: int,
    grid_shape: tuple[int, ...],
    machine: Machine | str,
    cache_scale: float | None = None,
    block: tuple[int, ...] | str | None = None,
    validate: bool = True,
    radius: int = 1,
    seed: int = 0,
    capacity_factor: float = 1.0,
    ivp_name: str | None = None,
    checkpoint=None,
) -> RankingReport:
    """One-call Offsite ranking: build method + tuner, return the report.

    The library-level entry point the service's ``/rank`` endpoint and
    the CLI share; ``machine`` may be a preset short name, and
    ``cache_scale`` shrinks its caches the same way the experiments do.
    """
    from repro.machine.presets import get_machine

    if isinstance(machine, str):
        machine = get_machine(machine)
    if cache_scale is not None:
        machine = machine.scaled_caches(cache_scale)
    method = build_pirk(family, stages, corrector_steps)
    tuner = OffsiteTuner(machine, block=block, capacity_factor=capacity_factor)
    return tuner.tune(
        method,
        tuple(grid_shape),
        validate=validate,
        radius=radius,
        seed=seed,
        ivp_name=ivp_name,
        checkpoint=checkpoint,
    )


def _final_lc_kernel(s: int, dim: int, radius: int):
    """The b-combination sweep shared by all variants."""
    from repro.offsite.kernels import CompositeKernel, ReadStream, WriteStream

    return CompositeKernel(
        name="final_lc",
        reads=tuple(
            [ReadStream("y")]
            + [ReadStream(f"Fi{l}", radius, dim) for l in range(s)]
        ),
        writes=(WriteStream("ynext"),),
        flops_per_lup=2.0 * s + s * (2 * radius * dim + 1) * 2.0,
    )

"""Offline tuning database.

Offsite's whole point is tuning *ahead of time*: rankings are computed
once per (method, problem, machine, grid) and stored, then the runtime
just looks the best variant up.  This module provides that store as a
JSON-backed database with nearest-grid lookup.
"""

from __future__ import annotations

import json
import os
from dataclasses import asdict, dataclass, field
from math import prod
from pathlib import Path

from repro import faults
from repro.util import crashsafe


@dataclass(frozen=True)
class TuningKey:
    """Identity of one tuning record."""

    method: str
    ivp: str
    machine: str
    grid: tuple[int, ...]

    def to_str(self) -> str:
        """Stable string form used as the JSON key."""
        return f"{self.method}|{self.ivp}|{self.machine}|" + "x".join(
            map(str, self.grid)
        )

    @staticmethod
    def from_str(text: str) -> "TuningKey":
        """Inverse of :meth:`to_str`."""
        try:
            method, ivp, machine, grid = text.split("|")
            return TuningKey(
                method, ivp, machine, tuple(int(g) for g in grid.split("x"))
            )
        except ValueError:
            raise ValueError(f"malformed tuning key {text!r}") from None


@dataclass
class TuningRecord:
    """Stored outcome of one offline tuning run."""

    key: TuningKey
    best_variant: str
    block: tuple[int, ...]
    predicted_s_per_step: float
    ranking: list[str] = field(default_factory=list)

    def to_json(self) -> dict:
        """JSON-compatible form."""
        data = asdict(self)
        data["key"] = self.key.to_str()
        data["block"] = list(self.block)
        return data

    @staticmethod
    def from_json(data: dict) -> "TuningRecord":
        """Inverse of :meth:`to_json`."""
        return TuningRecord(
            key=TuningKey.from_str(data["key"]),
            best_variant=data["best_variant"],
            block=tuple(data["block"]),
            predicted_s_per_step=data["predicted_s_per_step"],
            ranking=list(data.get("ranking", [])),
        )


class TuningDatabase:
    """In-memory tuning store with optional JSON persistence."""

    def __init__(self) -> None:
        self._records: dict[str, TuningRecord] = {}

    def __len__(self) -> int:
        return len(self._records)

    def put(self, record: TuningRecord) -> None:
        """Insert or replace a record."""
        self._records[record.key.to_str()] = record

    def get(self, key: TuningKey) -> TuningRecord | None:
        """Exact lookup."""
        return self._records.get(key.to_str())

    def lookup(self, key: TuningKey) -> TuningRecord | None:
        """Exact match, else the record with the closest grid volume
        for the same (method, ivp, machine) — Offsite's fallback when a
        runtime grid was not tuned explicitly."""
        exact = self.get(key)
        if exact is not None:
            return exact
        candidates = [
            r
            for r in self._records.values()
            if (r.key.method, r.key.ivp, r.key.machine)
            == (key.method, key.ivp, key.machine)
        ]
        if not candidates:
            return None
        target = prod(key.grid)
        return min(
            candidates, key=lambda r: abs(prod(r.key.grid) - target)
        )

    # ------------------------------------------------------------------
    def records(self) -> list[TuningRecord]:
        """Shallow snapshot of all records (safe to serialize later,
        e.g. on a writer thread, while the database keeps mutating)."""
        return list(self._records.values())

    def save(self, path: str | Path) -> None:
        """Persist all records as JSON (atomic temp-file + replace)."""
        TuningDatabase.write_records(path, self.records())

    @staticmethod
    def write_records(
        path: str | Path, records: list[TuningRecord]
    ) -> None:
        """Write a record snapshot as a checksummed envelope.

        Atomic temp-file + replace: safe against concurrent readers —
        the published file is always a complete document — and against
        crashing mid-write; the checksum lets :meth:`load` reject a
        file corrupted after the fact.
        """
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        data = [r.to_json() for r in records]
        tmp = path.parent / f".{path.name}.{os.getpid()}.tmp"
        try:
            faults.check("db.save")
            tmp.write_text(json.dumps(crashsafe.wrap(data), indent=2) + "\n")
            os.replace(tmp, path)
        except OSError:
            tmp.unlink(missing_ok=True)
            raise

    @staticmethod
    def load(path: str | Path) -> "TuningDatabase":
        """Load a database previously written by :meth:`save`.

        Accepts both the checksummed-envelope form and the legacy plain
        record list.  Any malformed content raises ``ValueError``
        (missing files raise ``OSError`` as before).
        """
        faults.check("db.load")
        text = Path(path).read_text()
        data = json.loads(text)
        if crashsafe.is_envelope(data):
            data = crashsafe.unwrap(data)  # CorruptPayload is a ValueError
        if not isinstance(data, list):
            raise ValueError(
                f"tuning database {path!s} is not a record list"
            )
        db = TuningDatabase()
        try:
            for item in data:
                db.put(TuningRecord.from_json(item))
        except (KeyError, TypeError) as exc:
            raise ValueError(
                f"malformed tuning record in {path!s}: {exc}"
            ) from None
        return db

    @staticmethod
    def load_or_empty(path: str | Path) -> "TuningDatabase":
        """Load if ``path`` is usable, else start empty (service warm tier).

        A missing or unreadable file starts empty; a file that exists
        but does not parse/verify is quarantined (renamed aside for the
        operator) and the service starts empty instead of crashing or
        serving garbage.
        """
        try:
            return TuningDatabase.load(path)
        except FileNotFoundError:
            return TuningDatabase()
        except OSError:
            return TuningDatabase()  # transient I/O: keep the file
        except ValueError:
            crashsafe.quarantine(path)
            return TuningDatabase()

    # ------------------------------------------------------------------
    def record_report(self, report, grid: tuple[int, ...],
                      block: tuple[int, ...]) -> TuningRecord:
        """Store the outcome of an ``OffsiteTuner`` run."""
        best = report.best_predicted()
        ranking = [
            t.variant
            for t in sorted(report.timings, key=lambda t: t.predicted_s)
        ]
        record = TuningRecord(
            key=TuningKey(report.method, report.ivp, report.machine, grid),
            best_variant=best.variant,
            block=block,
            predicted_s_per_step=best.predicted_s,
            ranking=ranking,
        )
        self.put(record)
        return record

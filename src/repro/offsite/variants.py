"""Implementation variants of one PIRK corrector iteration.

Following Offsite's kernel taxonomy, one fixed-point iteration

    Y_i <- y + h * sum_l a_il f(Y_l),      i = 1..s

can be scheduled over the grid in several ways with identical numerics
but very different stream counts and reuse:

* ``split``    — s RHS sweeps materialise F_l, then s LC sweeps build
  each Y_i from (y, F_1..F_s).
* ``fused_lc`` — s RHS sweeps, then ONE sweep building all Y_i
  (reads y, F_1..F_s; writes s arrays).
* ``scatter``  — per stage l one fused sweep computes f(Y_l) on the
  fly and accumulates ``acc_i += a_il * f`` into all s accumulators
  (read-modify-write), no F storage.
* ``gather``   — per stage i one sweep reads all Y_l (stencil reads!)
  and recomputes every f(Y_l) to form Y_i directly: minimal storage,
  s-fold arithmetic redundancy.

The final b-combination after the last iteration is one more LC-type
sweep, identical across variants.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.offsite.kernels import CompositeKernel, ReadStream, WriteStream


@dataclass(frozen=True)
class Variant:
    """One scheduling of a PIRK corrector iteration.

    ``kernels`` lists ``(kernel, invocations per corrector iteration)``.
    ``extra_arrays`` counts stage-storage arrays beyond ``y`` and the
    stage vectors themselves (memory footprint bookkeeping).
    """

    name: str
    stages: int
    kernels: tuple[tuple[CompositeKernel, int], ...]
    extra_arrays: int

    def sweeps_per_iteration(self) -> int:
        """Grid sweeps one corrector iteration performs."""
        return sum(count for _, count in self.kernels)

    def flops_per_lup_iteration(self) -> float:
        """Arithmetic per lattice update and corrector iteration."""
        return sum(k.flops_per_lup * c for k, c in self.kernels)

    def min_memory_bytes_per_iteration(self, dtype_bytes: int = 8) -> float:
        """Perfect-cache memory bytes per update and iteration."""
        return sum(
            k.min_memory_bytes_per_lup(dtype_bytes) * c for k, c in self.kernels
        )


def _stencil_flops(dim: int, radius: int) -> float:
    """Flops of the heat-type RHS stencil (star, given radius)."""
    points = 2 * radius * dim + 1
    return 2.0 * points  # one multiply-add per point, roughly


def pirk_variants(stages: int, dim: int = 3, radius: int = 1) -> list[Variant]:
    """Build the four canonical variants for an ``stages``-stage PIRK."""
    if stages < 1:
        raise ValueError("stages must be positive")
    s = stages
    f_stencil = _stencil_flops(dim, radius)

    rhs = CompositeKernel(
        name="rhs",
        reads=(ReadStream("Y", radius, dim),),
        writes=(WriteStream("F"),),
        flops_per_lup=f_stencil,
    )
    lc_single = CompositeKernel(
        name="lc_single",
        reads=tuple(
            [ReadStream("y")] + [ReadStream(f"F{l}") for l in range(s)]
        ),
        writes=(WriteStream("Ynext"),),
        flops_per_lup=2.0 * s,
    )
    lc_fused = CompositeKernel(
        name="lc_fused",
        reads=tuple(
            [ReadStream("y")] + [ReadStream(f"F{l}") for l in range(s)]
        ),
        writes=tuple(WriteStream(f"Y{i}") for i in range(s)),
        flops_per_lup=2.0 * s * s,
    )
    scatter = CompositeKernel(
        name="scatter",
        reads=tuple(
            [ReadStream("Yl", radius, dim)]
            + [ReadStream(f"acc{i}") for i in range(s)]
        ),
        writes=tuple(WriteStream(f"acc{i}", also_read=True) for i in range(s)),
        flops_per_lup=f_stencil + 2.0 * s,
    )
    gather = CompositeKernel(
        name="gather",
        reads=tuple(ReadStream(f"Y{l}", radius, dim) for l in range(s)),
        writes=(WriteStream("Ynext"),),
        flops_per_lup=s * f_stencil + 2.0 * s,
    )

    return [
        Variant(
            name="split",
            stages=s,
            kernels=((rhs, s), (lc_single, s)),
            extra_arrays=s,  # the F_l
        ),
        Variant(
            name="fused_lc",
            stages=s,
            kernels=((rhs, s), (lc_fused, 1)),
            extra_arrays=s,
        ),
        Variant(
            name="scatter",
            stages=s,
            kernels=((scatter, s),),
            extra_arrays=s,  # the accumulators double as next iterates
        ),
        Variant(
            name="gather",
            stages=s,
            kernels=((gather, s),),
            extra_arrays=0,
        ),
    ]

"""Numerical executors for the PIRK implementation variants.

Every variant reorganises the same arithmetic; these reference
executors prove it, so that ranking variants by *performance* is known
not to change the *numerics* (validated in the test suite against
:class:`repro.ode.PIRK`).
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.ode.tableau import Tableau

RhsFunc = Callable[[float, np.ndarray], np.ndarray]


def _final_combination(
    tab: Tableau, rhs: RhsFunc, t: float, y: np.ndarray, h: float,
    stage_y: np.ndarray,
) -> np.ndarray:
    out = y.copy()
    for l in range(tab.stages):
        out += h * tab.b[l] * rhs(t + tab.c[l] * h, stage_y[l])
    return out


def _step_split(tab, m, rhs, t, y, h):
    """Materialise all F_l, then build each Y_i in its own pass."""
    s = tab.stages
    stage_y = np.broadcast_to(y, (s,) + y.shape).copy()
    for _ in range(m):
        f = np.stack([rhs(t + tab.c[l] * h, stage_y[l]) for l in range(s)])
        new = np.empty_like(stage_y)
        for i in range(s):
            acc = y.copy()
            for l in range(s):
                acc += h * tab.a[i, l] * f[l]
            new[i] = acc
        stage_y = new
    return _final_combination(tab, rhs, t, y, h, stage_y)


def _step_fused_lc(tab, m, rhs, t, y, h):
    """Materialise all F_l, build all Y_i in one fused pass."""
    s = tab.stages
    stage_y = np.broadcast_to(y, (s,) + y.shape).copy()
    for _ in range(m):
        f = np.stack([rhs(t + tab.c[l] * h, stage_y[l]) for l in range(s)])
        # One sweep producing every stage: identical arithmetic, one pass.
        stage_y = y[None, :] + h * np.einsum("il,l...->i...", tab.a, f)
    return _final_combination(tab, rhs, t, y, h, stage_y)


def _step_scatter(tab, m, rhs, t, y, h):
    """Compute f(Y_l) once and scatter it into all accumulators."""
    s = tab.stages
    stage_y = np.broadcast_to(y, (s,) + y.shape).copy()
    for _ in range(m):
        acc = np.broadcast_to(y, (s,) + y.shape).copy()
        for l in range(s):
            f_l = rhs(t + tab.c[l] * h, stage_y[l])
            for i in range(s):
                acc[i] += h * tab.a[i, l] * f_l
        stage_y = acc
    return _final_combination(tab, rhs, t, y, h, stage_y)


def _step_gather(tab, m, rhs, t, y, h):
    """Recompute every f(Y_l) per target stage (no F storage)."""
    s = tab.stages
    stage_y = np.broadcast_to(y, (s,) + y.shape).copy()
    for _ in range(m):
        new = np.empty_like(stage_y)
        for i in range(s):
            acc = y.copy()
            for l in range(s):
                acc += h * tab.a[i, l] * rhs(t + tab.c[l] * h, stage_y[l])
            new[i] = acc
        stage_y = new
    return _final_combination(tab, rhs, t, y, h, stage_y)


_EXECUTORS = {
    "split": _step_split,
    "fused_lc": _step_fused_lc,
    "scatter": _step_scatter,
    "gather": _step_gather,
}


def execute_variant_step(
    variant_name: str,
    tableau: Tableau,
    corrector_steps: int,
    rhs: RhsFunc,
    t: float,
    y: np.ndarray,
    h: float,
) -> np.ndarray:
    """Advance one PIRK step using the named variant's schedule."""
    try:
        executor = _EXECUTORS[variant_name]
    except KeyError:
        raise KeyError(
            f"unknown variant {variant_name!r}; choose from {sorted(_EXECUTORS)}"
        ) from None
    if corrector_steps < 1:
        raise ValueError("need at least one corrector step")
    return executor(tableau, corrector_steps, rhs, t, y, h)

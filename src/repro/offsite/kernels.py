"""Composite kernel descriptions for ODE-method building blocks.

A PIRK step is built from grid kernels that are more general than the
single-output :class:`~repro.stencil.StencilSpec`: a fused linear
combination writes several stage grids in one sweep, a scatter kernel
reads *and* writes its accumulators.  :class:`CompositeKernel` captures
exactly what the performance machinery needs: the read streams (with
their stencil radius), the write streams (with an also-read flag), and
the arithmetic per lattice update.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ReadStream:
    """One input array of a composite kernel.

    ``radius``/``dim`` describe the access pattern: radius 0 is a pure
    unit-stride stream, radius >= 1 a star stencil of that radius.
    """

    grid: str
    radius: int = 0
    dim: int = 3

    def n_accesses(self) -> int:
        """Distinct read offsets per lattice update (star pattern)."""
        return 2 * self.radius * self.dim + 1

    def n_rows(self) -> int:
        """Distinct row projections (all axes but x)."""
        if self.radius == 0:
            return 1
        return 4 * self.radius + 1 if self.dim >= 3 else 2 * self.radius + 1

    def n_groups(self) -> int:
        """Distinct outermost-axis offsets."""
        if self.radius == 0 or self.dim < 3:
            return 1
        return 2 * self.radius + 1


@dataclass(frozen=True)
class WriteStream:
    """One output array; ``also_read`` marks read-modify-write streams."""

    grid: str
    also_read: bool = False


@dataclass(frozen=True)
class CompositeKernel:
    """A single fused sweep over the grid.

    ``flops_per_lup`` counts floating-point operations per lattice
    update of the sweep (not per written element).
    """

    name: str
    reads: tuple[ReadStream, ...]
    writes: tuple[WriteStream, ...]
    flops_per_lup: float

    def __post_init__(self) -> None:
        if not self.writes:
            raise ValueError(f"{self.name}: a kernel must write something")
        read_names = [r.grid for r in self.reads]
        if len(set(read_names)) != len(read_names):
            raise ValueError(f"{self.name}: duplicate read streams")
        write_names = [w.grid for w in self.writes]
        if len(set(write_names)) != len(write_names):
            raise ValueError(f"{self.name}: duplicate write streams")
        for w in self.writes:
            if w.also_read and w.grid not in read_names:
                raise ValueError(
                    f"{self.name}: {w.grid} marked also_read but not read"
                )
            if not w.also_read and w.grid in read_names:
                raise ValueError(
                    f"{self.name}: {w.grid} is read but not marked also_read"
                )

    @property
    def grids(self) -> tuple[str, ...]:
        """All arrays touched, reads first, write-only outputs last."""
        names = [r.grid for r in self.reads]
        names += [w.grid for w in self.writes if not w.also_read]
        return tuple(names)

    @property
    def max_radius(self) -> int:
        """Largest read radius (halo requirement)."""
        return max((r.radius for r in self.reads), default=0)

    @property
    def n_load_streams(self) -> int:
        """Distinct input arrays."""
        return len(self.reads)

    @property
    def n_store_streams(self) -> int:
        """Distinct output arrays."""
        return len(self.writes)

    def loads_per_lup(self) -> int:
        """SIMD loads per lattice update (one per distinct offset)."""
        return sum(r.n_accesses() for r in self.reads)

    def min_memory_bytes_per_lup(self, dtype_bytes: int = 8) -> float:
        """Perfect-cache main-memory traffic per update.

        Reads stream once; write-only streams add write-allocate +
        write-back, read-modify-write streams only the write-back.
        """
        elems = float(len(self.reads))
        for w in self.writes:
            elems += 1.0 if w.also_read else 2.0
        return elems * dtype_bytes

"""Offsite substitute: offline tuning of explicit ODE method kernels.

Offsite decomposes a PIRK time step into grid kernels (stage RHS
sweeps, linear combinations, fused forms), asks YaskSite's ECM model
for the runtime of each, and ranks whole implementation variants
without running them.  This package reproduces that pipeline:

* :mod:`repro.offsite.kernels` — composite kernel descriptions
  (multi-stream reads/writes, stencil radii, flops).
* :mod:`repro.offsite.variants` — the PIRK implementation-variant zoo.
* :mod:`repro.offsite.composite` — ECM prediction and exact-cache
  simulation for composite kernels.
* :mod:`repro.offsite.execute` — NumPy executors proving all variants
  compute the same step as :class:`repro.ode.PIRK`.
* :mod:`repro.offsite.tuner` — ranking, validation, cost ledger.
"""

from repro.offsite.kernels import CompositeKernel, ReadStream, WriteStream
from repro.offsite.variants import Variant, pirk_variants
from repro.offsite.composite import (
    VariantGrids,
    measure_kernel,
    predict_kernel,
)
from repro.offsite.execute import execute_variant_step
from repro.offsite.tuner import OffsiteTuner, RankingReport, VariantTiming
from repro.offsite.database import TuningDatabase, TuningKey, TuningRecord

__all__ = [
    "CompositeKernel",
    "ReadStream",
    "WriteStream",
    "Variant",
    "pirk_variants",
    "VariantGrids",
    "predict_kernel",
    "measure_kernel",
    "execute_variant_step",
    "OffsiteTuner",
    "RankingReport",
    "VariantTiming",
    "TuningDatabase",
    "TuningKey",
    "TuningRecord",
]

"""ECM prediction and exact-cache measurement for composite kernels."""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product
from math import prod
from typing import Iterator

import numpy as np

from repro import obs
from repro.cachesim.hierarchy import CacheHierarchy, TrafficReport
from repro.cachesim.memo import resolve_traffic_cache, stream_key
from repro.codegen.plan import KernelPlan
from repro.ecm.layer_conditions import effective_capacity
from repro.grid.grid import Grid
from repro.machine.machine import Machine
from repro.offsite.kernels import CompositeKernel
from repro.perf.simulate import NOISE_SIGMA, PIPELINE_FACTOR


class VariantGrids:
    """Named arrays of one ODE variant in a shared address space."""

    PAGE = 4096

    def __init__(
        self,
        names: tuple[str, ...],
        interior_shape: tuple[int, ...],
        halo: int,
        dtype_bytes: int = 8,
    ) -> None:
        self.interior_shape = tuple(interior_shape)
        self._grids: dict[str, Grid] = {}
        addr = 0
        for name in names:
            grid = Grid(
                name=name,
                interior_shape=self.interior_shape,
                halo=halo,
                dtype_bytes=dtype_bytes,
                base_addr=addr,
            )
            self._grids[name] = grid
            addr += grid.footprint_bytes
            addr += (-addr) % self.PAGE

    def __getitem__(self, name: str) -> Grid:
        return self._grids[name]

    def __contains__(self, name: str) -> bool:
        return name in self._grids

    @property
    def names(self) -> tuple[str, ...]:
        """Array names in address order."""
        return tuple(self._grids)


def _star_offsets(dim: int, radius: int) -> list[tuple[int, ...]]:
    offs = [tuple([0] * dim)]
    for axis in range(dim):
        for k in range(1, radius + 1):
            for sign in (-1, 1):
                off = [0] * dim
                off[axis] = sign * k
                offs.append(tuple(off))
    return offs


# ----------------------------------------------------------------------
# Analytic prediction (the Offsite-side use of the ECM model)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class CompositePrediction:
    """ECM-style prediction for one composite kernel."""

    kernel_name: str
    machine_name: str
    cycles_per_lup: float
    t_data_per_lup: tuple[float, ...]
    regimes: tuple[str, ...]
    mem_bytes_per_lup: float

    def seconds_per_lup(self, freq_ghz: float) -> float:
        """Wall seconds per lattice update."""
        return self.cycles_per_lup / (freq_ghz * 1e9)


def predict_kernel(
    kernel: CompositeKernel,
    interior_shape: tuple[int, ...],
    plan: KernelPlan,
    machine: Machine,
    dim: int = 3,
    dtype_bytes: int = 8,
    capacity_factor: float = 1.0,
) -> CompositePrediction:
    """Analytic cycles/LUP of a composite kernel (no execution)."""
    plan = plan.clipped(interior_shape)
    core = machine.core
    lanes = core.simd_lanes(dtype_bytes)
    nx = plan.block[dim - 1]
    by = plan.block[dim - 2] if dim >= 2 else 1
    bz = plan.block[0] if dim >= 3 else 1

    # In-core terms per lattice update.
    uops = kernel.flops_per_lup / 2.0  # ideal FMA contraction
    t_ol = uops / core.fma_ports / lanes
    t_nol = (
        kernel.loads_per_lup() / core.load_ports
        + kernel.n_store_streams / core.store_ports
    ) / lanes

    # Working sets for the layer conditions.
    ws_row = 0.0
    ws_plane = 0.0
    for r in kernel.reads:
        ws_row += (r.n_rows() + 1) * nx * dtype_bytes
        ext = 2 * r.radius
        ext_z = ext if dim >= 3 else 0
        ext_y = ext if dim >= 2 else 0
        # See repro.ecm.layer_conditions: in-flight planes keep `by`
        # rows each; only the centre plane adds the full y-window.
        ws_plane += ((ext_z + 1) * by + ext_y) * nx * dtype_bytes
    for w in kernel.writes:
        if not w.also_read:
            ws_row += 2 * nx * dtype_bytes
            ws_plane += by * nx * dtype_bytes

    regimes = []
    t_data = []
    mem_bytes = 0.0
    for k in range(machine.n_levels):
        cap = effective_capacity(machine, k) * capacity_factor
        if cap >= ws_plane:
            regime = "plane"
        elif cap >= ws_row:
            regime = "row"
        else:
            regime = "none"
        elems = 0.0
        for r in kernel.reads:
            if regime == "plane":
                vol = 1.0
                ext = 2 * r.radius
                if dim >= 3 and bz < interior_shape[0]:
                    vol *= 1.0 + ext / bz
                if dim >= 2 and by < interior_shape[dim - 2]:
                    vol *= 1.0 + ext / by
                elems += vol
            elif regime == "row":
                elems += r.n_groups()
            else:
                elems += r.n_rows()
        for w in kernel.writes:
            elems += 1.0 if w.also_read else 2.0
        bytes_per_lup = elems * dtype_bytes
        if k == machine.n_levels - 1:
            cycles = (
                bytes_per_lup * machine.mem_cycles_per_line(1) / machine.line_bytes
            )
            mem_bytes = bytes_per_lup
        else:
            cycles = bytes_per_lup / machine.caches[k].bytes_per_cycle
        regimes.append(regime)
        t_data.append(cycles)

    cycles_per_lup = max(t_ol, t_nol + sum(t_data))
    return CompositePrediction(
        kernel_name=kernel.name,
        machine_name=machine.name,
        cycles_per_lup=cycles_per_lup,
        t_data_per_lup=tuple(t_data),
        regimes=tuple(regimes),
        mem_bytes_per_lup=mem_bytes,
    )


def select_kernel_block(
    kernel: CompositeKernel,
    interior_shape: tuple[int, ...],
    machine: Machine,
    dim: int = 3,
    capacity_factor: float = 1.0,
) -> KernelPlan:
    """Analytic per-kernel block choice (YaskSite service to Offsite).

    Same candidate structure as the stencil tuner: power-of-two blocks
    on the non-unit-stride axes, x kept full, best predicted cycles
    wins (ties toward the largest block).
    """
    from itertools import product as _product

    per_axis: list[list[int]] = []
    for axis in range(dim):
        if axis == dim - 1:
            per_axis.append([interior_shape[axis]])
            continue
        sizes = []
        b = 4
        while b < interior_shape[axis]:
            sizes.append(b)
            b *= 2
        sizes.append(interior_shape[axis])
        per_axis.append(sizes)
    best: tuple[float, int, KernelPlan] | None = None
    for combo in _product(*per_axis):
        plan = KernelPlan(block=combo)
        pred = predict_kernel(
            kernel, interior_shape, plan, machine,
            dim=dim, capacity_factor=capacity_factor,
        )
        key = (pred.cycles_per_lup, -plan.block_volume())
        if best is None or key < (best[0], best[1]):
            best = (pred.cycles_per_lup, -plan.block_volume(), plan)
    assert best is not None
    return best[2]


# ----------------------------------------------------------------------
# Exact-cache "measurement"
# ----------------------------------------------------------------------
def kernel_stream(
    kernel: CompositeKernel,
    grids: VariantGrids,
    plan: KernelPlan,
    dim: int,
) -> Iterator[tuple[np.ndarray, np.ndarray]]:
    """Line-access stream of one composite-kernel sweep."""
    shape = grids.interior_shape
    plan = plan.clipped(shape)
    line_bytes = 64
    halo = grids[kernel.grids[0]].halo
    dtype = 8

    # Precompute (grid, offset, is_write) columns.
    read_cols: list[tuple[str, tuple[int, ...]]] = []
    for r in kernel.reads:
        for off in _star_offsets(dim, r.radius):
            read_cols.append((r.grid, off))
    write_cols = [w.grid for w in kernel.writes]

    order = plan.order()
    ranges = [
        [(lo, min(lo + plan.block[a], shape[a]))
         for lo in range(0, shape[a], plan.block[a])]
        for a in range(dim)
    ]
    ordered = [ranges[a] for a in order]
    zero_tail = (0,) * 1
    for combo in product(*ordered):
        bounds: list[tuple[int, int]] = [None] * dim  # type: ignore[list-item]
        for axis, rng in zip(order, combo):
            bounds[axis] = rng
        x0, x1 = bounds[dim - 1]
        n = x1 - x0
        if n <= 0:
            continue
        outer_iters = [range(b[0], b[1]) for b in bounds[:-1]]
        for outer in product(*outer_iters):
            firsts = []
            flags = []
            seen: dict[int, int] = {}
            for g, off in read_cols:
                layout = grids[g].layout
                idx = tuple(
                    o + halo + d for o, d in zip(off[:-1], outer)
                ) + (off[-1] + halo + x0,)
                line = layout.element_addr(idx) // line_bytes
                if line in seen:
                    continue
                seen[line] = 1
                firsts.append(line)
                flags.append(False)
            for g in write_cols:
                layout = grids[g].layout
                idx = tuple(halo + d for d in outer) + (halo + x0,)
                line = layout.element_addr(idx) // line_bytes
                firsts.append(line)
                flags.append(True)
            first_addr = grids[write_cols[0]].layout.element_addr(
                tuple(halo + d for d in outer) + (halo + x0,)
            )
            last_addr = first_addr + (n - 1) * dtype
            n_chunks = int(last_addr // line_bytes - first_addr // line_bytes + 1)
            cols = np.array(firsts, dtype=np.int64)
            lines = (
                cols[None, :] + np.arange(n_chunks, dtype=np.int64)[:, None]
            ).ravel()
            writes = np.tile(np.array(flags, dtype=bool), n_chunks)
            yield lines, writes


def _kernel_key(
    kernel: CompositeKernel,
    grids: VariantGrids,
    plan: KernelPlan,
    machine: Machine,
    dim: int,
    warmup: bool,
) -> str:
    """Content key of one composite-kernel replay (see ``stream_key``)."""
    plan = plan.clipped(grids.interior_shape)
    payload = {
        "kernel": kernel.name,
        "reads": [[r.grid, r.radius, r.dim] for r in kernel.reads],
        "writes": [[w.grid, w.also_read] for w in kernel.writes],
        "grids": [
            [
                g,
                grids[g].base_addr,
                grids[g].halo,
                grids[g].dtype_bytes,
                list(grids[g].layout.shape),
            ]
            for g in grids.names
        ],
        "shape": list(grids.interior_shape),
        "block": list(plan.block),
        "order": list(plan.order()),
        "dim": dim,
        "machine": [
            [c.name, c.size_bytes, c.line_bytes, c.assoc, c.victim,
             c.write_policy.value]
            for c in machine.caches
        ],
        "warmup": bool(warmup),
    }
    return stream_key("offsite-kernel", payload)


def measure_kernel(
    kernel: CompositeKernel,
    grids: VariantGrids,
    plan: KernelPlan,
    machine: Machine,
    dim: int = 3,
    seed: int = 0,
    warmup: bool = True,
    engine: str = "auto",
    traffic_cache="default",
) -> tuple[float, TrafficReport]:
    """Simulated (cycles/LUP, traffic) of one composite-kernel sweep.

    The deterministic traffic replay is memoized behind ``traffic_cache``
    (see :mod:`repro.cachesim.memo`); the in-core cycle model and the
    seeded noise are recomputed after every lookup, so cached and cold
    calls agree bit-for-bit for equal seeds.
    """
    lups = prod(grids.interior_shape)
    with obs.span("cachesim.sweep") as sp:
        cache = resolve_traffic_cache(traffic_cache)
        traffic = None
        key = None
        if cache is not None:
            key = _kernel_key(kernel, grids, plan, machine, dim, warmup)
            traffic = cache.get(key)
            sp.add(**({"memo_hits": 1} if traffic is not None
                      else {"memo_misses": 1}))
        if traffic is None:
            with obs.span("cachesim.replay") as rp:
                hier = CacheHierarchy(machine, engine=engine)
                rp.set(engine=hier.engine)
                if warmup:
                    for lines, writes in kernel_stream(
                        kernel, grids, plan, dim
                    ):
                        hier.access_many(lines, writes)
                    hier.reset_counters()
                for lines, writes in kernel_stream(kernel, grids, plan, dim):
                    hier.access_many(lines, writes)
                traffic = hier.report(lups=lups)
            if cache is not None:
                cache.put(key, traffic)

    core = machine.core
    lanes = core.simd_lanes(8)
    t_exec = kernel.flops_per_lup / 2.0 / core.fma_ports / lanes * PIPELINE_FACTOR
    t_ports = (
        kernel.loads_per_lup() / core.load_ports
        + kernel.n_store_streams / core.store_ports
    ) / lanes
    t_traffic = 0.0
    for k in range(len(traffic.loads)):
        lines_per_lup = traffic.total_lines(k) / lups
        if k == len(traffic.loads) - 1:
            cy = machine.mem_cycles_per_line(1)
        else:
            cy = machine.caches[k].cycles_per_line()
        t_traffic += lines_per_lup * cy
    cycles = max(t_exec, t_ports + t_traffic)
    rng = np.random.default_rng(seed)
    cycles *= 1.0 + rng.normal(0.0, NOISE_SIGMA)
    return float(cycles), traffic

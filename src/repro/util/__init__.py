"""Small shared utilities (table formatting, ASCII plots)."""

from repro.util.tables import format_table
from repro.util.asciiplot import line_plot

__all__ = ["format_table", "line_plot"]

"""Segmented multi-process persistence for the tuning database.

The single-file :class:`~repro.offsite.database.TuningDatabase` is
atomic but single-writer: N shard processes rewriting one JSON file
would last-write-win each other's records away.  The segmented store
gives every shard its **own** segment file under one directory::

    <root>/segment-base.json     # compacted history (lowest precedence)
    <root>/segment-0.json        # shard 0's records (single writer)
    <root>/segment-1.json        # shard 1's records
    ...

Each segment is a checksummed :mod:`repro.util.crashsafe` envelope
whose payload carries a schema version::

    {"schema": 1, "shard": "0", "records": [<TuningRecord JSON>, ...]}

Writes stay single-writer-per-file (each shard atomically rewrites only
its own segment), so the store is multi-process safe without locks.
Reads merge all segments — base first, then shard segments in name
order, own records last — so a shard sees records its peers persisted
(consistent-hash routing makes cross-shard keys rare: they appear only
after membership churn remaps keys).  Segment reloads are mtime-driven
and rate-limited, so the steady state costs a few ``stat`` calls.

:meth:`SegmentedTuningDatabase.compact` merges every segment into
``segment-base.json`` and removes the merged inputs, re-checking each
input's mtime before unlinking so a shard that rewrote its segment
mid-compaction never loses the newer records (the stale copy folded
into base is shadowed on the next load, since base has the lowest
merge precedence).

Schema versioning: a segment with a *newer* schema than this build
understands is skipped (reported in :meth:`skipped_segments`), never
quarantined — a rolling upgrade must not destroy the new build's data.
A corrupt envelope is quarantined exactly like the single-file store.
Legacy plain record lists (the pre-segmented format) load as schema 0.
"""

from __future__ import annotations

import os
import time
from pathlib import Path

from repro.offsite.database import TuningDatabase, TuningRecord
from repro.util import crashsafe

__all__ = ["SEGMENT_SCHEMA", "SegmentedTuningDatabase"]

#: Schema version written by this build.
SEGMENT_SCHEMA = 1

#: Compacted-history segment name (lowest merge precedence).
BASE_SEGMENT = "segment-base.json"


def _segment_name(shard: str) -> str:
    return f"segment-{shard}.json"


def _load_segment_records(path: Path, skipped: list[str]) -> list[TuningRecord]:
    """Records of one segment; quarantine corrupt, skip newer-schema."""
    try:
        payload = crashsafe.load_envelope(path)
    except FileNotFoundError:
        return []
    except OSError:
        return []  # transient I/O: keep the file, merge without it
    except crashsafe.CorruptPayload:
        crashsafe.quarantine(path)
        return []
    parsed = _parse_segment(payload)
    if parsed is None:
        crashsafe.quarantine(path)
        return []
    schema, raw_records = parsed
    if schema > SEGMENT_SCHEMA:
        skipped.append(path.name)  # newer build's data: never touch
        return []
    records = []
    for item in raw_records:
        try:
            records.append(TuningRecord.from_json(item))
        except (KeyError, TypeError, ValueError):
            continue  # one bad record must not drop the segment
    return records


def _parse_segment(payload: object) -> tuple[int, list] | None:
    """(schema, records) of one verified envelope payload, else None.

    Legacy plain record lists are schema 0; a dict needs integer
    ``schema`` and list ``records``.  ``None`` marks a malformed (not
    merely newer) payload.
    """
    if isinstance(payload, list):
        return 0, payload
    if (
        isinstance(payload, dict)
        and isinstance(payload.get("schema"), int)
        and isinstance(payload.get("records"), list)
    ):
        return payload["schema"], payload["records"]
    return None


class SegmentedTuningDatabase(TuningDatabase):
    """A :class:`TuningDatabase` backed by per-shard segment files.

    Parameters
    ----------
    root:
        Directory holding the segment files (created on first write).
    shard:
        This process's shard identity; only ``segment-<shard>.json``
        is ever written by this instance.
    refresh_interval_s:
        Minimum seconds between directory re-scans on a lookup miss
        (0 re-scans on every miss — used by tests).
    """

    def __init__(
        self,
        root: str | os.PathLike,
        shard: int | str,
        refresh_interval_s: float = 1.0,
    ) -> None:
        super().__init__()
        self.root = Path(root)
        self.shard = str(shard)
        self.refresh_interval_s = refresh_interval_s
        self._own: dict[str, TuningRecord] = {}
        self._seen: dict[str, tuple[float, int]] = {}  # name -> (mtime, size)
        self._skipped: list[str] = []
        self._last_refresh = float("-inf")
        self.refresh(force=True)

    # -- merge/read -----------------------------------------------------
    def skipped_segments(self) -> list[str]:
        """Segment names skipped for carrying a newer schema."""
        return list(self._skipped)

    def _segment_paths(self) -> list[Path]:
        """All segments, in merge-precedence order (own shard last)."""
        try:
            names = sorted(
                p.name
                for p in self.root.iterdir()
                if p.name.startswith("segment-") and p.name.endswith(".json")
            )
        except OSError:
            return []
        own = _segment_name(self.shard)
        ordered = [n for n in names if n == BASE_SEGMENT]
        ordered += [n for n in names if n not in (BASE_SEGMENT, own)]
        if own in names:
            ordered.append(own)
        return [self.root / name for name in ordered]

    def refresh(self, force: bool = False) -> bool:
        """Re-merge segments whose mtime/size changed; True if reloaded.

        Rate-limited by ``refresh_interval_s`` unless ``force``.  A
        segment another process rewrote (or a brand-new peer segment)
        is picked up here; this instance's own unsaved puts always
        survive the merge (they are overlaid last).
        """
        now = time.monotonic()
        if not force and now - self._last_refresh < self.refresh_interval_s:
            return False
        self._last_refresh = now
        paths = self._segment_paths()
        stats: dict[str, tuple[float, int]] = {}
        for path in paths:
            try:
                st = path.stat()
                stats[path.name] = (st.st_mtime, st.st_size)
            except OSError:
                continue
        if not force and stats == self._seen:
            return False
        merged: dict[str, TuningRecord] = {}
        skipped: list[str] = []
        for path in paths:
            if path.name not in stats:
                continue
            for record in _load_segment_records(path, skipped):
                merged[record.key.to_str()] = record
        # Unsaved local puts win over anything read from disk.
        merged.update(self._own)
        self._records = merged
        self._seen = stats
        self._skipped = skipped
        return True

    def get(self, key):
        """Exact lookup, re-merging peer segments on a (rate-limited) miss."""
        record = super().get(key)
        if record is None and self.refresh():
            record = super().get(key)
        return record

    def lookup(self, key):
        """Nearest-grid lookup over the freshest merged view."""
        self.refresh()
        return super().lookup(key)

    # -- write ----------------------------------------------------------
    def put(self, record: TuningRecord) -> None:
        """Insert/replace a record; it becomes part of this shard's segment."""
        super().put(record)
        self._own[record.key.to_str()] = record

    def own_records(self) -> list[TuningRecord]:
        """Snapshot of the records this shard owns (persistence unit)."""
        return list(self._own.values())

    def snapshot_for_persist(self) -> list[TuningRecord]:
        """What :meth:`persist_snapshot` should be handed (own records
        only — peers' records live in *their* segments)."""
        return self.own_records()

    def persist_snapshot(self, records: list[TuningRecord]) -> None:
        """Atomically (re)write this shard's segment with ``records``.

        Runs on a writer thread in the service; safe because only this
        shard ever writes ``segment-<shard>.json`` and the publish is
        an atomic replace.
        """
        crashsafe.dump_envelope(
            self.root / _segment_name(self.shard),
            {
                "schema": SEGMENT_SCHEMA,
                "shard": self.shard,
                "records": [r.to_json() for r in records],
            },
        )

    def save(self, path=None) -> None:
        """Persist this shard's segment (``path`` is ignored; the root
        directory fixed at construction is the only write target)."""
        self.persist_snapshot(self.own_records())

    # -- compaction -----------------------------------------------------
    @staticmethod
    def compact(root: str | os.PathLike) -> dict:
        """Merge all segments into ``segment-base.json``; report counts.

        Safe against concurrent writers: an input whose mtime changed
        between the merge read and the unlink is kept (its fresher
        records shadow the base copy on every load, because base has
        the lowest merge precedence).  Newer-schema segments are left
        untouched.
        """
        root = Path(root)
        merged: dict[str, TuningRecord] = {}
        inputs: list[tuple[Path, float]] = []
        skipped: list[str] = []
        names = sorted(
            p.name
            for p in (root.iterdir() if root.is_dir() else [])
            if p.name.startswith("segment-") and p.name.endswith(".json")
        )
        ordered = [n for n in names if n == BASE_SEGMENT]
        ordered += [n for n in names if n != BASE_SEGMENT]
        for name in ordered:
            path = root / name
            try:
                mtime = path.stat().st_mtime
            except OSError:
                continue
            before = len(skipped)
            for record in _load_segment_records(path, skipped):
                merged[record.key.to_str()] = record
            if len(skipped) > before:
                continue  # newer schema: not an input, never unlinked
            inputs.append((path, mtime))
        crashsafe.dump_envelope(
            root / BASE_SEGMENT,
            {
                "schema": SEGMENT_SCHEMA,
                "shard": "base",
                "records": [r.to_json() for r in merged.values()],
            },
        )
        removed = 0
        for path, mtime in inputs:
            if path.name == BASE_SEGMENT:
                continue  # just rewritten
            try:
                if path.stat().st_mtime != mtime:
                    continue  # rewritten mid-compaction: keep the file
                path.unlink()
                removed += 1
            except OSError:
                continue
        return {
            "records": len(merged),
            "segments_merged": len(inputs),
            "segments_removed": removed,
            "segments_skipped": skipped,
        }

"""Plain-text table rendering for experiment output."""

from __future__ import annotations

from typing import Iterable, Mapping


def format_table(
    rows: Iterable[Mapping[str, object]],
    title: str | None = None,
) -> str:
    """Render dict rows as an aligned ASCII table.

    Column order follows the first row; missing cells render empty.
    """
    rows = list(rows)
    if not rows:
        return f"{title}\n(no rows)" if title else "(no rows)"
    columns = list(rows[0].keys())
    for row in rows[1:]:
        for key in row:
            if key not in columns:
                columns.append(key)

    def cell(row: Mapping[str, object], col: str) -> str:
        value = row.get(col, "")
        if isinstance(value, float):
            return f"{value:.4g}"
        return str(value)

    widths = {
        col: max(len(col), *(len(cell(r, col)) for r in rows)) for col in columns
    }
    sep = "-+-".join("-" * widths[c] for c in columns)
    header = " | ".join(c.ljust(widths[c]) for c in columns)
    body = [
        " | ".join(cell(r, c).ljust(widths[c]) for c in columns) for r in rows
    ]
    out = []
    if title:
        out.append(title)
    out.extend([header, sep, *body])
    return "\n".join(out)

"""Minimal ASCII line plots for figure-style experiment output."""

from __future__ import annotations

from typing import Sequence

_MARKS = "ox+*#@"


def line_plot(
    series: dict[str, tuple[Sequence[float], Sequence[float]]],
    width: int = 60,
    height: int = 16,
    title: str | None = None,
    xlabel: str = "",
    ylabel: str = "",
) -> str:
    """Render one or more (x, y) series as an ASCII scatter/line plot.

    Each series gets its own marker; axes are linearly scaled to the
    union of the data ranges.
    """
    if not series:
        raise ValueError("no series to plot")
    xs_all: list[float] = []
    ys_all: list[float] = []
    for xs, ys in series.values():
        if len(xs) != len(ys):
            raise ValueError("series x/y lengths differ")
        xs_all.extend(float(x) for x in xs)
        ys_all.extend(float(y) for y in ys)
    if not xs_all:
        raise ValueError("series are empty")
    x_min, x_max = min(xs_all), max(xs_all)
    y_min, y_max = min(ys_all), max(ys_all)
    x_span = (x_max - x_min) or 1.0
    y_span = (y_max - y_min) or 1.0

    canvas = [[" "] * width for _ in range(height)]
    for idx, (name, (xs, ys)) in enumerate(series.items()):
        mark = _MARKS[idx % len(_MARKS)]
        for x, y in zip(xs, ys):
            col = int((float(x) - x_min) / x_span * (width - 1))
            row = height - 1 - int((float(y) - y_min) / y_span * (height - 1))
            canvas[row][col] = mark

    lines: list[str] = []
    if title:
        lines.append(title)
    y_hi = f"{y_max:.4g}"
    y_lo = f"{y_min:.4g}"
    label_w = max(len(y_hi), len(y_lo), len(ylabel))
    for i, row in enumerate(canvas):
        if i == 0:
            prefix = y_hi.rjust(label_w)
        elif i == height - 1:
            prefix = y_lo.rjust(label_w)
        elif i == height // 2 and ylabel:
            prefix = ylabel.rjust(label_w)
        else:
            prefix = " " * label_w
        lines.append(f"{prefix} |{''.join(row)}")
    lines.append(" " * label_w + " +" + "-" * width)
    x_axis = f"{x_min:.4g}".ljust(width - 8) + f"{x_max:.4g}".rjust(8)
    lines.append(" " * (label_w + 2) + x_axis)
    if xlabel:
        lines.append(" " * (label_w + 2) + xlabel.center(width))
    legend = "  ".join(
        f"{_MARKS[i % len(_MARKS)]}={name}" for i, name in enumerate(series)
    )
    lines.append(" " * (label_w + 2) + legend)
    return "\n".join(lines)

"""Checksummed JSON envelopes and quarantine for crash-safe stores.

Every persistent artifact (tuning database, disk traffic-memo entries,
tuner checkpoints) is written as an *envelope*::

    {"v": 1, "sha256": "<hex digest of the canonical payload>",
     "payload": <the actual JSON document>}

published atomically (unique temp file + ``os.replace``), so a reader
never sees a torn file, and a flipped bit, truncated write or
hand-edited file is detected by the checksum instead of being parsed
into garbage.  Readers that find a bad file call :func:`quarantine` to
rename it aside (``<name>.corrupt.<pid>.<n>``) — the evidence is kept
for the operator, and the store recovers by regenerating the entry.
"""

from __future__ import annotations

import hashlib
import itertools
import json
import os
from pathlib import Path

__all__ = [
    "CorruptPayload",
    "checksum",
    "wrap",
    "unwrap",
    "is_envelope",
    "dump_envelope",
    "load_envelope",
    "quarantine",
]

#: Envelope format version.
VERSION = 1

_QUARANTINE_COUNTER = itertools.count()


class CorruptPayload(ValueError):
    """An envelope whose structure or checksum does not verify."""


def _canonical(payload: object) -> str:
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def checksum(payload: object) -> str:
    """sha256 hex digest of the canonical JSON form of ``payload``."""
    return hashlib.sha256(_canonical(payload).encode()).hexdigest()


def wrap(payload: object) -> dict:
    """Build the envelope dict for ``payload``."""
    return {"v": VERSION, "sha256": checksum(payload), "payload": payload}


def is_envelope(data: object) -> bool:
    """Whether ``data`` has the envelope shape (checksum not verified)."""
    return (
        isinstance(data, dict)
        and "payload" in data
        and isinstance(data.get("sha256"), str)
    )


def unwrap(data: object) -> object:
    """Verify an envelope and return its payload.

    Raises :class:`CorruptPayload` on the wrong shape or a checksum
    mismatch.
    """
    if not is_envelope(data):
        raise CorruptPayload("not a checksummed envelope")
    payload = data["payload"]
    if checksum(payload) != data["sha256"]:
        raise CorruptPayload("payload checksum mismatch")
    return payload


def dump_envelope(path: str | os.PathLike, payload: object) -> None:
    """Atomically write ``payload`` as an envelope at ``path``.

    A unique temp file in the same directory plus ``os.replace`` makes
    the publish atomic even with concurrent writers — readers see the
    old file or the new one, never a partial write.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.parent / (
        f".{path.name}.{os.getpid()}.{next(_QUARANTINE_COUNTER)}.tmp"
    )
    try:
        tmp.write_text(json.dumps(wrap(payload)))
        os.replace(tmp, path)
    except OSError:
        try:
            tmp.unlink(missing_ok=True)
        except OSError:
            pass
        raise


def load_envelope(path: str | os.PathLike) -> object:
    """Read and verify an envelope; return its payload.

    Raises :class:`CorruptPayload` when the file exists but does not
    parse/verify; ``OSError`` (e.g. ``FileNotFoundError``) propagates so
    callers can distinguish "no file" from "bad file".
    """
    raw = Path(path).read_bytes()
    try:
        # json.loads handles the decode too, so undecodable bytes are
        # CorruptPayload (UnicodeDecodeError is a ValueError) — a
        # corrupted file, not an I/O failure.
        data = json.loads(raw)
    except ValueError as exc:
        raise CorruptPayload(f"unparseable envelope: {exc}") from None
    return unwrap(data)


def quarantine(path: str | os.PathLike) -> Path | None:
    """Rename a bad file aside; return its new path (None if it vanished).

    The quarantine name is unique per process and call so repeated
    corruption of the same path never destroys earlier evidence.
    """
    path = Path(path)
    target = path.with_name(
        f"{path.name}.corrupt.{os.getpid()}.{next(_QUARANTINE_COUNTER)}"
    )
    try:
        os.replace(path, target)
    except OSError:
        return None
    return target

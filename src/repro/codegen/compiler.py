"""Front door of the kernel compiler: spec + plan -> CompiledKernel."""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.codegen.c_backend import check_wellformed, emit_c
from repro.codegen.plan import KernelPlan
from repro.codegen.python_backend import build_callable, emit_python
from repro.grid.folding import default_fold
from repro.grid.grid import GridSet
from repro.stencil.spec import StencilSpec


@dataclass
class CompiledKernel:
    """A lowered, runnable stencil kernel plus its source artifacts."""

    spec: StencilSpec
    interior_shape: tuple[int, ...]
    plan: KernelPlan
    halo: int
    py_source: str
    c_source: str
    codegen_seconds: float
    _func: Callable = field(repr=False)

    def run(self, grids: GridSet, params: dict[str, float] | None = None) -> None:
        """Execute one sweep, writing the output grid's interior."""
        arrays = {g.name: g.data for g in grids}
        merged = dict(self.spec.params)
        if params:
            merged.update(params)
        self._func(arrays, merged)

    def run_timesteps(
        self,
        grids: GridSet,
        steps: int,
        params: dict[str, float] | None = None,
    ) -> None:
        """Jacobi time loop: sweep then swap in/out buffers, ``steps`` times."""
        if steps < 0:
            raise ValueError("steps must be non-negative")
        for _ in range(steps):
            self.run(grids, params)
            grids.swap_in_out()

    def reference_sweep(
        self, grids: GridSet, params: dict[str, float] | None = None
    ) -> np.ndarray:
        """Unblocked NumPy evaluation of the stencil, for validation.

        Returns the interior result without writing the grid set.
        """
        from repro.stencil import expr as E

        merged = dict(self.spec.params)
        if params:
            merged.update(params)

        def ev(node: E.Expr) -> np.ndarray | float:
            if isinstance(node, E.Const):
                return node.value
            if isinstance(node, E.Param):
                return merged[node.name]
            if isinstance(node, E.GridAccess):
                return grids[node.grid].shifted(node.offsets)
            if isinstance(node, E.BinOp):
                lhs, rhs = ev(node.lhs), ev(node.rhs)
                if node.op == "+":
                    return lhs + rhs
                if node.op == "-":
                    return lhs - rhs
                if node.op == "*":
                    return lhs * rhs
                return lhs / rhs
            raise TypeError(type(node).__name__)

        result = ev(self.spec.expr)
        if not isinstance(result, np.ndarray):
            result = np.full(self.interior_shape, float(result))
        return result


def compile_kernel(
    spec: StencilSpec,
    interior_shape: tuple[int, ...],
    plan: KernelPlan,
    machine=None,
    extra_halo: int = 0,
) -> CompiledKernel:
    """Lower ``spec`` under ``plan`` for a grid of ``interior_shape``.

    ``machine`` (optional) supplies the default SIMD fold; the fold only
    affects the analytic in-core model, never numerical results.
    """
    if len(interior_shape) != spec.dim:
        raise ValueError("grid rank does not match stencil rank")
    plan = plan.clipped(interior_shape)
    if plan.fold is None and machine is not None:
        plan = KernelPlan(
            block=plan.block,
            loop_order=plan.loop_order,
            fold=default_fold(machine.core, spec.dtype_bytes, spec.dim),
            threads=plan.threads,
            wavefront=plan.wavefront,
        )
    halo = spec.radius + extra_halo
    start = time.perf_counter()
    py_source = emit_python(spec, interior_shape, plan, halo)
    func = build_callable(py_source)
    c_source = emit_c(spec, interior_shape, plan, halo)
    check_wellformed(c_source)
    elapsed = time.perf_counter() - start
    return CompiledKernel(
        spec=spec,
        interior_shape=tuple(interior_shape),
        plan=plan,
        halo=halo,
        py_source=py_source,
        c_source=c_source,
        codegen_seconds=elapsed,
        _func=func,
    )

"""Expression-level optimizer for stencil update rules.

YASK's code generator canonicalises and optimises the stencil AST
before emitting kernels; this module reproduces the passes that matter
for the in-core model:

* **constant folding** — collapse arithmetic on literals;
* **algebraic identities** — ``x*1``, ``x*0``, ``x+0`` and friends;
* **common-subexpression elimination** — hash-cons the AST into a DAG
  and emit let-bindings for shared subtrees;
* **flop recounting** — the ECM in-core term uses post-CSE counts.

All passes are semantics-preserving; the test suite checks evaluation
equivalence on random expression trees.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.stencil import expr as E


# ----------------------------------------------------------------------
# Constant folding and algebraic simplification
# ----------------------------------------------------------------------
def fold_constants(expr: E.Expr) -> E.Expr:
    """Recursively fold literal arithmetic and trivial identities."""
    if not isinstance(expr, E.BinOp):
        return expr
    lhs = fold_constants(expr.lhs)
    rhs = fold_constants(expr.rhs)
    op = expr.op
    if isinstance(lhs, E.Const) and isinstance(rhs, E.Const):
        return E.Const(_apply(op, lhs.value, rhs.value))
    # x + 0, 0 + x, x - 0
    if op in ("+", "-") and isinstance(rhs, E.Const) and rhs.value == 0.0:
        return lhs
    if op == "+" and isinstance(lhs, E.Const) and lhs.value == 0.0:
        return rhs
    # x * 1, 1 * x, x / 1
    if op in ("*", "/") and isinstance(rhs, E.Const) and rhs.value == 1.0:
        return lhs
    if op == "*" and isinstance(lhs, E.Const) and lhs.value == 1.0:
        return rhs
    # x * 0, 0 * x  (grid reads are pure, so dropping them is sound)
    if op == "*" and (
        (isinstance(lhs, E.Const) and lhs.value == 0.0)
        or (isinstance(rhs, E.Const) and rhs.value == 0.0)
    ):
        return E.Const(0.0)
    # 0 / x
    if op == "/" and isinstance(lhs, E.Const) and lhs.value == 0.0:
        return E.Const(0.0)
    return E.BinOp(op, lhs, rhs)


def _apply(op: str, a: float, b: float) -> float:
    if op == "+":
        return a + b
    if op == "-":
        return a - b
    if op == "*":
        return a * b
    if b == 0.0:
        raise ZeroDivisionError("constant division by zero in stencil")
    return a / b


# ----------------------------------------------------------------------
# Common-subexpression elimination
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class LetBound:
    """Result of CSE: a root expression over numbered temporaries.

    ``bindings[i]`` is the expression for temporary ``i``; temporaries
    may reference earlier temporaries through :class:`TempRef` leaves.
    """

    root: E.Expr
    bindings: tuple[E.Expr, ...]

    @property
    def n_temps(self) -> int:
        """Number of shared subexpressions extracted."""
        return len(self.bindings)

    def flops(self) -> int:
        """Arithmetic ops after sharing (each binding counted once)."""
        total = E.total_flops(self.root)
        for b in self.bindings:
            total += E.total_flops(b)
        return total


@dataclass(frozen=True)
class TempRef(E.Expr):
    """Reference to a CSE temporary."""

    index: int

    def __str__(self) -> str:
        return f"t{self.index}"


def eliminate_common_subexpressions(expr: E.Expr) -> LetBound:
    """Share repeated non-leaf subtrees via let-bindings.

    A subtree becomes a temporary when it occurs more than once and is
    not a leaf (grid access, constant, parameter).
    """
    counts: dict[E.Expr, int] = {}

    def count(node: E.Expr) -> None:
        if isinstance(node, E.BinOp):
            counts[node] = counts.get(node, 0) + 1
            if counts[node] == 1:
                for child in node.children():
                    count(child)

    count(expr)
    shared = {node for node, n in counts.items() if n > 1}

    bindings: list[E.Expr] = []
    temp_of: dict[E.Expr, int] = {}

    def rewrite(node: E.Expr) -> E.Expr:
        if isinstance(node, E.BinOp):
            if node in temp_of:
                return TempRef(temp_of[node])
            new = E.BinOp(node.op, rewrite(node.lhs), rewrite(node.rhs))
            if node in shared:
                temp_of[node] = len(bindings)
                bindings.append(new)
                return TempRef(temp_of[node])
            return new
        return node

    root = rewrite(expr)
    return LetBound(root=root, bindings=tuple(bindings))


# ----------------------------------------------------------------------
# Whole-pipeline entry points
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class OptimizationReport:
    """Before/after statistics of the optimisation pipeline."""

    flops_before: int
    flops_after: int
    temps: int

    @property
    def flops_saved(self) -> int:
        """Arithmetic operations removed."""
        return self.flops_before - self.flops_after


def optimize(expr: E.Expr) -> tuple[E.Expr, LetBound, OptimizationReport]:
    """Run folding then CSE; return (folded expr, let form, report)."""
    before = E.total_flops(expr)
    folded = fold_constants(expr)
    let = eliminate_common_subexpressions(folded)
    report = OptimizationReport(
        flops_before=before,
        flops_after=let.flops(),
        temps=let.n_temps,
    )
    return folded, let, report


def evaluate(expr: E.Expr, env: dict[str, float], temps: list[float] | None = None) -> float:
    """Scalar evaluator (for tests): grids map ``"g@off"`` keys in env."""
    if isinstance(expr, E.Const):
        return expr.value
    if isinstance(expr, E.Param):
        return env[expr.name]
    if isinstance(expr, TempRef):
        if temps is None:
            raise ValueError("TempRef outside a let context")
        return temps[expr.index]
    if isinstance(expr, E.GridAccess):
        return env[f"{expr.grid}@{expr.offsets}"]
    if isinstance(expr, E.BinOp):
        return _apply(
            expr.op, evaluate(expr.lhs, env, temps), evaluate(expr.rhs, env, temps)
        )
    raise TypeError(type(expr).__name__)


def evaluate_let(let: LetBound, env: dict[str, float]) -> float:
    """Evaluate a CSE'd expression with its bindings."""
    temps: list[float] = []
    for binding in let.bindings:
        temps.append(evaluate(binding, env, temps))
    return evaluate(let.root, env, temps)

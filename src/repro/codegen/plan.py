"""Kernel tuning plans: the parameter space YaskSite searches.

A plan fixes every knob the paper's tuner chooses: per-axis spatial
block sizes, the traversal order of block loops, the SIMD fold, the
OpenMP-style thread count and the wavefront (temporal blocking) depth.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from itertools import product
from math import prod
from typing import Iterator

from repro.grid.folding import Fold
from repro.machine.machine import Machine
from repro.stencil.spec import StencilSpec

__all__ = [
    "KernelPlan",
    "candidate_plans",
    "candidate_folds",
    "unblocked_plan",
]


@dataclass(frozen=True)
class KernelPlan:
    """Tuning-parameter assignment for one stencil kernel.

    Parameters
    ----------
    block:
        Spatial block size per axis (slowest first).  The unit-stride
        axis is conventionally left unblocked (block = grid extent) as
        in YASK; smaller x-blocks are allowed but rarely useful.
    loop_order:
        Permutation of axis indices for the *block* loops, outermost
        first.  Within a block the canonical z-y-x nesting is used.
    fold:
        SIMD fold (see :mod:`repro.grid.folding`); ``None`` means the
        machine default is picked at compile time.
    threads:
        Cores used; blocks are distributed over threads along the
        outermost block loop.
    wavefront:
        Temporal blocking depth (1 = pure spatial blocking).
    """

    block: tuple[int, ...]
    loop_order: tuple[int, ...] | None = None
    fold: Fold | None = None
    threads: int = 1
    wavefront: int = 1

    def __post_init__(self) -> None:
        if any(b <= 0 for b in self.block):
            raise ValueError(f"block sizes must be positive: {self.block}")
        if self.threads <= 0:
            raise ValueError("threads must be positive")
        if self.wavefront <= 0:
            raise ValueError("wavefront must be positive")
        if self.loop_order is not None and sorted(self.loop_order) != list(
            range(len(self.block))
        ):
            raise ValueError(
                f"loop_order {self.loop_order} is not a permutation of axes"
            )

    @property
    def dim(self) -> int:
        """Number of spatial axes."""
        return len(self.block)

    def order(self) -> tuple[int, ...]:
        """Effective block loop order (default: natural z..x)."""
        return self.loop_order or tuple(range(self.dim))

    def clipped(self, interior_shape: tuple[int, ...]) -> "KernelPlan":
        """Clamp block sizes to the grid extents."""
        if len(interior_shape) != self.dim:
            raise ValueError("plan rank does not match grid rank")
        block = tuple(
            min(b, n) for b, n in zip(self.block, interior_shape)
        )
        return replace(self, block=block)

    def block_volume(self) -> int:
        """Lattice points per spatial block."""
        return prod(self.block)

    def describe(self) -> str:
        """Short human-readable label for tables."""
        axes = "zyx"[-self.dim:] if self.dim <= 3 else None
        if axes:
            blk = "x".join(str(b) for b in self.block)
        else:
            blk = str(self.block)
        parts = [f"b={blk}"]
        if self.loop_order is not None:
            parts.append(f"ord={''.join(str(a) for a in self.loop_order)}")
        if self.threads > 1:
            parts.append(f"t={self.threads}")
        if self.wavefront > 1:
            parts.append(f"wf={self.wavefront}")
        return ",".join(parts)


def unblocked_plan(interior_shape: tuple[int, ...], threads: int = 1) -> KernelPlan:
    """The naive baseline: one block spanning the whole grid."""
    return KernelPlan(block=tuple(interior_shape), threads=threads)


def candidate_folds(
    spec: StencilSpec, machine: Machine
) -> list[Fold]:
    """SIMD folds admissible for the stencil on this machine.

    The inline fold always qualifies; for 3D kernels with 8 lanes the
    YASK-style 2x2x2 brick fold is added (4-lane machines get 1x2x2).
    """
    from repro.grid.folding import default_fold

    lanes = machine.core.simd_lanes(spec.dtype_bytes)
    folds = [Fold(tuple([1] * (spec.dim - 1) + [lanes]))]
    if spec.dim >= 3:
        if lanes == 8:
            folds.append(Fold(tuple([1] * (spec.dim - 3) + [2, 2, 2])))
        elif lanes == 4:
            folds.append(Fold(tuple([1] * (spec.dim - 2) + [2, 2])))
    default = default_fold(machine.core, spec.dtype_bytes, spec.dim)
    if default not in folds:
        folds.append(default)
    return folds


def candidate_plans(
    spec: StencilSpec,
    interior_shape: tuple[int, ...],
    machine: Machine,
    threads: int = 1,
    include_orders: bool = False,
    include_folds: bool = False,
) -> Iterator[KernelPlan]:
    """Enumerate the spatial-block search space for a grid.

    Mirrors YASK's tuner: power-of-two candidates for the middle axes,
    the unit-stride axis kept at full extent, optional block-loop
    orders and SIMD folds.  The x axis extent is always the innermost
    full row so the streaming pattern the ECM model assumes holds for
    every candidate.  With ``threads > 1`` candidates that cannot keep
    every thread busy (fewer outer blocks than threads) are dropped.
    """
    dim = spec.dim
    if len(interior_shape) != dim:
        raise ValueError("grid rank does not match stencil rank")
    full = tuple(interior_shape)
    # Candidate block edge lengths per blocked axis: powers of two up to
    # the axis extent, plus the extent itself.
    per_axis: list[list[int]] = []
    for axis in range(dim):
        if axis == dim - 1:
            per_axis.append([full[axis]])
            continue
        sizes = []
        b = 4
        while b < full[axis]:
            sizes.append(b)
            b *= 2
        sizes.append(full[axis])
        per_axis.append(sizes)
    orders: list[tuple[int, ...] | None] = [None]
    if include_orders and dim == 3:
        orders = [None, (1, 0, 2)]
    folds: list[Fold | None] = [None]
    if include_folds:
        folds = list(candidate_folds(spec, machine))
    seen: set[tuple] = set()
    for combo in product(*per_axis):
        if threads > 1:
            # Enough outer-axis blocks to feed every thread.
            n_outer_blocks = -(-full[0] // combo[0])
            if n_outer_blocks < threads:
                continue
        for order in orders:
            for fold in folds:
                key = (combo, order, fold)
                if key in seen:
                    continue
                seen.add(key)
                yield KernelPlan(
                    block=combo, loop_order=order, fold=fold, threads=threads
                )

"""Kernel compiler: lowers a stencil spec + tuning plan to runnable code.

This is the YASK substitute.  A :class:`~repro.codegen.KernelPlan`
carries the tuning parameters the paper searches over (spatial block
sizes, block loop order, vector fold, thread count, wavefront depth);
:func:`~repro.codegen.compile_kernel` lowers spec+plan into a
:class:`~repro.codegen.CompiledKernel` holding an executable NumPy
kernel (generated Python source, compiled with ``exec``) and the
corresponding C source text.
"""

from repro.codegen.plan import KernelPlan, candidate_folds, candidate_plans
from repro.codegen.compiler import CompiledKernel, compile_kernel
from repro.codegen.optimize import optimize
from repro.codegen.solution_compiler import CompiledSolution, compile_solution
from repro.codegen.python_backend import emit_python
from repro.codegen.c_backend import emit_c

__all__ = [
    "KernelPlan",
    "candidate_plans",
    "candidate_folds",
    "optimize",
    "CompiledSolution",
    "compile_solution",
    "CompiledKernel",
    "compile_kernel",
    "emit_python",
    "emit_c",
]

"""Compile multi-equation solutions into ordered kernel pipelines."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.codegen.compiler import CompiledKernel, compile_kernel
from repro.codegen.plan import KernelPlan
from repro.grid.fields import FieldSet
from repro.stencil.solution import Solution


@dataclass
class CompiledSolution:
    """Executable form of a :class:`~repro.stencil.solution.Solution`.

    Kernels are held in dependency order; ``run`` sweeps each equation
    once.  ``allocate`` builds a matching :class:`FieldSet`.
    """

    solution: Solution
    interior_shape: tuple[int, ...]
    kernels: list[CompiledKernel]
    halo: int

    def allocate(self, seed: int | None = None) -> FieldSet:
        """Create the field set the solution operates on."""
        fields = FieldSet(self.solution.fields, self.interior_shape, self.halo)
        if seed is not None:
            fields.randomize(seed)
        return fields

    def run(
        self, fields: FieldSet, params: dict[str, float] | None = None
    ) -> None:
        """Execute every equation once, in dependency order."""
        arrays = fields.arrays()
        for kernel in self.kernels:
            merged = dict(kernel.spec.params)
            if params:
                merged.update(
                    {k: v for k, v in params.items() if k in merged}
                )
            kernel._func(arrays, merged)

    def reference_run(
        self, fields: FieldSet, params: dict[str, float] | None = None
    ) -> dict[str, np.ndarray]:
        """Unblocked reference evaluation; returns output interiors.

        Evaluates the same schedule with the per-kernel reference path
        (writing results through, since later equations may read them).
        """
        results: dict[str, np.ndarray] = {}
        for kernel in self.kernels:
            ref = _reference_sweep_fields(kernel, fields, params)
            fields[kernel.spec.output].interior[...] = ref
            results[kernel.spec.output] = ref
        return results

    @property
    def c_sources(self) -> dict[str, str]:
        """Equation name -> generated C translation unit."""
        return {k.spec.name: k.c_source for k in self.kernels}


def _reference_sweep_fields(kernel, fields: FieldSet, params):
    from repro.stencil import expr as E

    merged = dict(kernel.spec.params)
    if params:
        merged.update({k: v for k, v in params.items() if k in merged})

    def ev(node):
        if isinstance(node, E.Const):
            return node.value
        if isinstance(node, E.Param):
            return merged[node.name]
        if isinstance(node, E.GridAccess):
            return fields[node.grid].shifted(node.offsets)
        if isinstance(node, E.BinOp):
            lhs, rhs = ev(node.lhs), ev(node.rhs)
            if node.op == "+":
                return lhs + rhs
            if node.op == "-":
                return lhs - rhs
            if node.op == "*":
                return lhs * rhs
            return lhs / rhs
        raise TypeError(type(node).__name__)

    result = ev(kernel.spec.expr)
    if not isinstance(result, np.ndarray):
        result = np.full(fields.interior_shape, float(result))
    return result


def compile_solution(
    solution: Solution,
    interior_shape: tuple[int, ...],
    plan: KernelPlan | None = None,
    machine=None,
) -> CompiledSolution:
    """Lower every equation of ``solution`` under one shared plan.

    The halo is sized for the *largest* radius in the bundle so all
    equations share one field allocation.
    """
    if not solution.equations:
        raise ValueError(f"{solution.name}: empty solution")
    schedule = solution.schedule()
    dim = schedule[0].dim
    if len(interior_shape) != dim:
        raise ValueError("grid rank does not match solution rank")
    plan = plan or KernelPlan(block=tuple(interior_shape))
    halo = solution.max_radius()
    kernels = [
        compile_kernel(
            spec,
            interior_shape,
            plan,
            machine=machine,
            extra_halo=halo - spec.radius,
        )
        for spec in schedule
    ]
    return CompiledSolution(
        solution=solution,
        interior_shape=tuple(interior_shape),
        kernels=kernels,
        halo=halo,
    )

"""Generate executable (NumPy) Python source for a blocked stencil sweep.

The generated function performs exactly the loop structure the plan
prescribes — block loops in the requested order, full unit-stride rows
inside — and is compiled with :func:`compile`/``exec``.  Being real
generated code (rather than an interpreter) keeps this an honest
code-generation path, the role YASK's C++ generator plays in the paper.
"""

from __future__ import annotations

from repro.codegen.plan import KernelPlan
from repro.stencil import expr as E
from repro.stencil.spec import StencilSpec

_INDENT = "    "


def _expr_to_py(expr: E.Expr, halo: int, dim: int) -> str:
    """Lower an expression to a NumPy slicing expression string."""
    if isinstance(expr, E.Const):
        return repr(expr.value)
    if isinstance(expr, E.Param):
        return f"p_{expr.name}"
    if isinstance(expr, E.GridAccess):
        slices = ", ".join(
            f"i{a}0 + {halo + expr.offsets[a]}:i{a}1 + {halo + expr.offsets[a]}"
            for a in range(dim)
        )
        return f"g_{expr.grid}[{slices}]"
    if isinstance(expr, E.BinOp):
        lhs = _expr_to_py(expr.lhs, halo, dim)
        rhs = _expr_to_py(expr.rhs, halo, dim)
        return f"({lhs} {expr.op} {rhs})"
    raise TypeError(f"cannot lower {type(expr).__name__}")


def emit_python(
    spec: StencilSpec,
    interior_shape: tuple[int, ...],
    plan: KernelPlan,
    halo: int,
    func_name: str = "kernel",
) -> str:
    """Emit Python source for one blocked sweep of ``spec``.

    The produced function has the signature
    ``kernel(arrays: dict[str, ndarray], params: dict[str, float])`` and
    writes the output grid's interior in place.
    """
    if plan.wavefront != 1:
        raise ValueError(
            "the sweep backend generates wavefront=1 kernels; temporal "
            "blocking is driven by repro.blocking.temporal"
        )
    dim = spec.dim
    plan = plan.clipped(interior_shape)
    lines: list[str] = []
    emit = lines.append
    emit(f"def {func_name}(arrays, params):")
    emit(f'{_INDENT}"""Generated blocked sweep for stencil {spec.name}')
    emit(f"{_INDENT}grid={interior_shape} plan={plan.describe()}")
    emit(f'{_INDENT}"""')
    for grid in spec.grids:
        emit(f'{_INDENT}g_{grid} = arrays["{grid}"]')
    for param in spec.params:
        emit(f'{_INDENT}p_{param} = params["{param}"]')
    depth = 1
    # Block loops, outermost first in the plan's order.
    for axis in plan.order():
        n = interior_shape[axis]
        b = plan.block[axis]
        pad = _INDENT * depth
        emit(f"{pad}for bb{axis} in range(0, {n}, {b}):")
        depth += 1
        pad = _INDENT * depth
        emit(f"{pad}i{axis}0 = bb{axis}")
        emit(f"{pad}i{axis}1 = min(bb{axis} + {b}, {n})")
    pad = _INDENT * depth
    out_slices = ", ".join(
        f"i{a}0 + {halo}:i{a}1 + {halo}" for a in range(dim)
    )
    rhs = _expr_to_py(spec.expr, halo, dim)
    emit(f"{pad}g_{spec.output}[{out_slices}] = {rhs}")
    emit("")
    return "\n".join(lines)


def build_callable(source: str, func_name: str = "kernel"):
    """Compile generated source and return the kernel function."""
    namespace: dict[str, object] = {}
    code = compile(source, filename=f"<generated {func_name}>", mode="exec")
    exec(code, namespace)  # noqa: S102 - executing our own generated code
    func = namespace[func_name]
    func.__source__ = source  # type: ignore[attr-defined]
    return func

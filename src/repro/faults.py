"""Deterministic, seeded fault injection behind named fault points.

Production layers call :func:`check` at *fault points* — named places
where a fault is plausible (a worker evaluating a tuner job, a disk
read of the traffic memo, a tuning-database load).  When no plan is
installed (the common case) the call is a single module-global read;
the hardened paths pay essentially nothing.

A :class:`FaultPlan` decides when a point *fires*.  Each point can be
armed with one :class:`FaultSpec` carrying a trigger —

``nth=K``
    fire exactly on the K-th call of that point (1-based),
``every=K``
    fire on every K-th call,
``probability=P`` (``p=P`` in the string form)
    fire with probability ``P`` per call, from a private
    ``random.Random`` seeded by ``seed`` and the point name, so a plan
    replays identically run after run,
``count=N``
    stop after N firings (combines with the triggers above)

— and a ``mode`` deciding what a firing does:

``error``
    raise :class:`FaultInjected` (the default),
``oserror``
    raise :class:`OSError`, for I/O paths that are expected to tolerate
    disk failures,
``exit``
    terminate the process immediately via ``os._exit`` — the way to
    kill a worker mid-sweep and exercise ``BrokenProcessPool`` paths.

Plans are activated explicitly (:func:`install`, or the
:func:`injected` context manager in tests) or ambiently by setting
``REPRO_FAULTS`` before the process starts, e.g.::

    REPRO_FAULTS="tuner.worker:nth=2:mode=exit;memo.read:p=0.2:seed=7"

Every firing is counted in a process-wide ledger (:func:`counters`,
surfaced by the service's ``/metrics``) and, when an :mod:`repro.obs`
trace is recording, as a ``fault.<point>`` counter on the innermost
open span — so traces show exactly where chaos hit.
"""

from __future__ import annotations

import os
import random
import threading
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterable, Iterator

from repro import obs

__all__ = [
    "ENV_FLAG",
    "MODES",
    "FaultInjected",
    "FaultSpec",
    "FaultPlan",
    "check",
    "install",
    "install_from_env",
    "clear",
    "active_plan",
    "active_specs",
    "injected",
    "counters",
    "reset_counters",
]

#: Environment variable carrying an ambient fault plan (read at import).
ENV_FLAG = "REPRO_FAULTS"

#: What a firing does: raise FaultInjected, raise OSError, or kill the
#: process (``os._exit``) to simulate a crashed worker.
MODES = ("error", "oserror", "exit")

#: Exit status used by ``mode=exit`` firings (BSD's EX_SOFTWARE).
EXIT_STATUS = 70


class FaultInjected(RuntimeError):
    """The error raised by an ``error``-mode fault firing."""

    def __init__(self, point: str) -> None:
        super().__init__(f"injected fault at {point!r}")
        self.point = point


@dataclass(frozen=True)
class FaultSpec:
    """Arming of one fault point (see the module docstring grammar)."""

    point: str
    probability: float | None = None
    nth: int | None = None
    every: int | None = None
    count: int | None = None
    mode: str = "error"
    seed: int = 0

    def __post_init__(self) -> None:
        if not self.point:
            raise ValueError("fault point name must be non-empty")
        if self.mode not in MODES:
            raise ValueError(
                f"unknown fault mode {self.mode!r}; choose from {MODES}"
            )
        if self.probability is not None and not (
            0.0 <= self.probability <= 1.0
        ):
            raise ValueError(
                f"probability must be in [0, 1], got {self.probability!r}"
            )
        for name in ("nth", "every", "count"):
            value = getattr(self, name)
            if value is not None and value < 1:
                raise ValueError(f"{name} must be >= 1, got {value!r}")

    @staticmethod
    def parse(text: str) -> "FaultSpec":
        """Parse one ``point:key=value:...`` clause."""
        parts = [p.strip() for p in text.split(":") if p.strip()]
        if not parts:
            raise ValueError(f"empty fault spec in {text!r}")
        point, kwargs = parts[0], {}
        for part in parts[1:]:
            key, sep, value = part.partition("=")
            if not sep:
                raise ValueError(
                    f"bad fault option {part!r} in {text!r}; "
                    f"expected key=value"
                )
            key = key.strip().lower()
            value = value.strip()
            try:
                if key in ("p", "probability"):
                    kwargs["probability"] = float(value)
                elif key in ("nth", "every", "count", "seed"):
                    kwargs[key] = int(value)
                elif key == "mode":
                    kwargs["mode"] = value
                else:
                    raise ValueError(f"unknown fault option {key!r}")
            except ValueError as exc:
                raise ValueError(f"bad fault spec {text!r}: {exc}") from None
        return FaultSpec(point, **kwargs)


class _PointState:
    """Mutable trigger state of one armed point."""

    __slots__ = ("spec", "calls", "fired", "rng")

    def __init__(self, spec: FaultSpec) -> None:
        self.spec = spec
        self.calls = 0
        self.fired = 0
        # Seeded per point so multi-point plans replay deterministically
        # regardless of the interleaving of calls across points.
        self.rng = random.Random(f"{spec.seed}:{spec.point}")


class FaultPlan:
    """A set of armed fault points with deterministic trigger state.

    Thread-safe: the service evaluates jobs on a thread pool, and all
    those threads may hit fault points concurrently.
    """

    def __init__(self, specs: Iterable[FaultSpec]) -> None:
        self._lock = threading.Lock()
        self._points: dict[str, _PointState] = {}
        for spec in specs:
            self._points[spec.point] = _PointState(spec)  # last wins

    @staticmethod
    def parse(text: str) -> "FaultPlan":
        """Parse a ``;``-separated list of fault-spec clauses."""
        specs = [
            FaultSpec.parse(clause)
            for clause in text.split(";")
            if clause.strip()
        ]
        if not specs:
            raise ValueError(f"no fault specs in {text!r}")
        return FaultPlan(specs)

    def specs(self) -> tuple[FaultSpec, ...]:
        """The armed specs (picklable; used to arm worker processes)."""
        return tuple(state.spec for state in self._points.values())

    def should_fire(self, point: str) -> FaultSpec | None:
        """Record one call of ``point``; return its spec iff it fires."""
        state = self._points.get(point)
        if state is None:
            return None
        with self._lock:
            state.calls += 1
            spec = state.spec
            if spec.count is not None and state.fired >= spec.count:
                return None
            if spec.nth is not None:
                hit = state.calls == spec.nth
            elif spec.every is not None:
                hit = state.calls % spec.every == 0
            else:
                hit = True
            if hit and spec.probability is not None:
                hit = state.rng.random() < spec.probability
            if not hit:
                return None
            state.fired += 1
        return spec

    def counters(self) -> dict[str, int]:
        """Firings per point recorded by *this* plan."""
        with self._lock:
            return {
                point: state.fired
                for point, state in self._points.items()
                if state.fired
            }


# ----------------------------------------------------------------------
# Process-wide plan + firing ledger
# ----------------------------------------------------------------------
_PLAN: FaultPlan | None = None
_FIRED: dict[str, int] = {}
_FIRED_LOCK = threading.Lock()


def check(point: str) -> None:
    """Fault point: no-op unless an installed plan fires ``point``.

    A firing is counted (process ledger + the innermost open
    :mod:`repro.obs` span) and then acted on per the spec's ``mode``.
    """
    plan = _PLAN
    if plan is None:
        return
    spec = plan.should_fire(point)
    if spec is None:
        return
    with _FIRED_LOCK:
        _FIRED[point] = _FIRED.get(point, 0) + 1
    span = obs.current_span()
    if span is not None:
        span.add(**{f"fault.{point}": 1})
    if spec.mode == "exit":
        os._exit(EXIT_STATUS)
    if spec.mode == "oserror":
        raise OSError(f"injected I/O fault at {point!r}")
    raise FaultInjected(point)


def install(plan: FaultPlan | str | None) -> None:
    """Activate ``plan`` process-wide (a string is parsed; None clears)."""
    global _PLAN
    if isinstance(plan, str):
        plan = FaultPlan.parse(plan)
    _PLAN = plan


def install_from_env() -> FaultPlan | None:
    """(Re-)install the plan described by ``REPRO_FAULTS``, if any."""
    text = os.environ.get(ENV_FLAG, "")
    install(FaultPlan.parse(text) if text else None)
    return _PLAN


def clear() -> None:
    """Deactivate fault injection (plan off; the ledger is kept)."""
    install(None)


def active_plan() -> FaultPlan | None:
    """The installed plan, if any."""
    return _PLAN


def active_specs() -> tuple[FaultSpec, ...]:
    """Specs of the installed plan (empty when injection is off).

    Picklable — worker pools forward these so forked/spawned workers
    arm the same points with *fresh* per-process trigger state.
    """
    plan = _PLAN
    return plan.specs() if plan is not None else ()


@contextmanager
def injected(plan: FaultPlan | str) -> Iterator[FaultPlan]:
    """Install a plan for the duration of a ``with`` block (tests)."""
    if isinstance(plan, str):
        plan = FaultPlan.parse(plan)
    previous = _PLAN
    install(plan)
    try:
        yield plan
    finally:
        install(previous)


def counters() -> dict[str, int]:
    """Cumulative firings per point in this process (survives plan swaps)."""
    with _FIRED_LOCK:
        return dict(_FIRED)


def reset_counters() -> None:
    """Zero the process firing ledger (tests)."""
    with _FIRED_LOCK:
        _FIRED.clear()


# Ambient activation: arm the plan described by the environment once at
# import, mirroring obs's REPRO_TRACE handling (workers started with
# ``spawn`` re-import this module and re-arm themselves).
install_from_env()

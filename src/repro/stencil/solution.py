"""Multi-equation stencil solutions (YASK's "stencil bundles").

A :class:`Solution` is an ordered set of stencil equations evaluated
once per time step; equations may read each other's outputs, so the
executable order is the topological order of the def-use graph.  This
is the YASK abstraction Offsite targets when an ODE stage update is
split across several grid equations.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import networkx as nx

from repro.stencil.spec import StencilSpec


@dataclass
class Solution:
    """A named bundle of stencil equations over shared fields."""

    name: str
    equations: list[StencilSpec] = field(default_factory=list)

    def __post_init__(self) -> None:
        outputs = [eq.output for eq in self.equations]
        if len(set(outputs)) != len(outputs):
            raise ValueError(
                f"{self.name}: two equations write the same grid"
            )
        dims = {eq.dim for eq in self.equations}
        if len(dims) > 1:
            raise ValueError(f"{self.name}: mixed dimensionalities {dims}")

    def add(self, spec: StencilSpec) -> "Solution":
        """Append an equation (returns self for chaining)."""
        self.equations.append(spec)
        self.__post_init__()
        return self

    # ------------------------------------------------------------------
    @property
    def fields(self) -> tuple[str, ...]:
        """All grids touched by any equation, sorted."""
        names: set[str] = set()
        for eq in self.equations:
            names.update(eq.grids)
        return tuple(sorted(names))

    @property
    def inputs(self) -> tuple[str, ...]:
        """Fields read but never written (external state)."""
        written = {eq.output for eq in self.equations}
        read: set[str] = set()
        for eq in self.equations:
            read.update(eq.reads)
        return tuple(sorted(read - written))

    @property
    def outputs(self) -> tuple[str, ...]:
        """Fields written by some equation."""
        return tuple(sorted(eq.output for eq in self.equations))

    def max_radius(self) -> int:
        """Largest stencil radius over the bundle (halo requirement)."""
        return max(eq.radius for eq in self.equations)

    # ------------------------------------------------------------------
    def dependency_graph(self) -> nx.DiGraph:
        """Def-use graph: edge A -> B when B reads A's output."""
        graph = nx.DiGraph()
        by_output = {eq.output: eq for eq in self.equations}
        for eq in self.equations:
            graph.add_node(eq.name)
        for eq in self.equations:
            for read in eq.reads:
                producer = by_output.get(read)
                if producer is not None and producer is not eq:
                    graph.add_edge(producer.name, eq.name)
        return graph

    def schedule(self) -> list[StencilSpec]:
        """Equations in a valid execution order (topological).

        Raises ``ValueError`` for cyclic bundles (an equation chain
        that feeds back within one step is not a valid explicit update).
        """
        graph = self.dependency_graph()
        try:
            order = list(nx.topological_sort(graph))
        except nx.NetworkXUnfeasible:
            cycle = nx.find_cycle(graph)
            raise ValueError(
                f"{self.name}: cyclic dependency {cycle}"
            ) from None
        by_name = {eq.name: eq for eq in self.equations}
        return [by_name[n] for n in order]

    def critical_path_length(self) -> int:
        """Longest dependency chain (lower bound on sweep phases)."""
        graph = self.dependency_graph()
        if graph.number_of_nodes() == 0:
            return 0
        return nx.dag_longest_path_length(graph) + 1

    def describe(self) -> dict[str, object]:
        """Summary row for reports."""
        return {
            "solution": self.name,
            "equations": len(self.equations),
            "fields": len(self.fields),
            "inputs": len(self.inputs),
            "max radius": self.max_radius(),
            "critical path": self.critical_path_length(),
            "flops/LUP": sum(eq.flops for eq in self.equations),
        }

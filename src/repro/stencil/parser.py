"""Text front end for stencil definitions.

YASK consumes stencils written in its DSL; the equivalent here is a
small expression language parsed into :class:`~repro.stencil.expr`
trees.  Grammar (standard precedence, left-associative):

.. code-block:: text

    stencil  := target '=' expr
    target   := NAME '[' offsets ']'
    expr     := term (('+' | '-') term)*
    term     := unary (('*' | '/') unary)*
    unary    := '-' unary | atom
    atom     := NUMBER | NAME | NAME '[' offsets ']' | '(' expr ')'
    offsets  := INT (',' INT)*

A bare ``NAME`` is a scalar parameter; ``NAME[...]`` is a grid access.

>>> parse_stencil("u_new[0,0] = 0.25*u[0,0] + a*(u[0,1] + u[0,-1])",
...               params={"a": 0.1}).flops
4
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.stencil import expr as E
from repro.stencil.spec import StencilSpec


class StencilParseError(ValueError):
    """Raised for syntax errors, with position information."""

    def __init__(self, message: str, pos: int, text: str) -> None:
        pointer = " " * pos + "^"
        super().__init__(f"{message} at column {pos}\n  {text}\n  {pointer}")
        self.pos = pos


@dataclass(frozen=True)
class _Token:
    kind: str  # NUMBER / NAME / OP / LBRACKET / RBRACKET / LPAREN / RPAREN / COMMA / EQUALS / END
    text: str
    pos: int


_TOKEN_RE = re.compile(
    r"""
    (?P<WS>\s+)
  | (?P<NUMBER>\d+\.\d*([eE][+-]?\d+)?|\.\d+([eE][+-]?\d+)?|\d+([eE][+-]?\d+)?)
  | (?P<NAME>[A-Za-z_][A-Za-z_0-9]*)
  | (?P<OP>[+\-*/])
  | (?P<LBRACKET>\[)
  | (?P<RBRACKET>\])
  | (?P<LPAREN>\()
  | (?P<RPAREN>\))
  | (?P<COMMA>,)
  | (?P<EQUALS>=)
    """,
    re.VERBOSE,
)


def _tokenize(text: str) -> list[_Token]:
    tokens = []
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None:
            raise StencilParseError(
                f"unexpected character {text[pos]!r}", pos, text
            )
        kind = match.lastgroup
        assert kind is not None
        if kind != "WS":
            tokens.append(_Token(kind, match.group(), pos))
        pos = match.end()
    tokens.append(_Token("END", "", len(text)))
    return tokens


class _Parser:
    def __init__(self, text: str) -> None:
        self.text = text
        self.tokens = _tokenize(text)
        self.i = 0

    @property
    def current(self) -> _Token:
        return self.tokens[self.i]

    def _advance(self) -> _Token:
        token = self.current
        self.i += 1
        return token

    def _expect(self, kind: str, what: str) -> _Token:
        if self.current.kind != kind:
            raise StencilParseError(
                f"expected {what}, found {self.current.text or 'end'!r}",
                self.current.pos,
                self.text,
            )
        return self._advance()

    # -- grammar -------------------------------------------------------
    def parse_assignment(self) -> tuple[str, tuple[int, ...], E.Expr]:
        name = self._expect("NAME", "output grid name").text
        offsets = self._parse_offsets()
        if any(o != 0 for o in offsets):
            raise StencilParseError(
                "output must be written at offset 0",
                self.tokens[self.i - 1].pos,
                self.text,
            )
        self._expect("EQUALS", "'='")
        expr = self.parse_expr()
        self._expect("END", "end of input")
        return name, offsets, expr

    def parse_expr(self) -> E.Expr:
        node = self.parse_term()
        while self.current.kind == "OP" and self.current.text in "+-":
            op = self._advance().text
            node = E.BinOp(op, node, self.parse_term())
        return node

    def parse_term(self) -> E.Expr:
        node = self.parse_unary()
        while self.current.kind == "OP" and self.current.text in "*/":
            op = self._advance().text
            node = E.BinOp(op, node, self.parse_unary())
        return node

    def parse_unary(self) -> E.Expr:
        if self.current.kind == "OP" and self.current.text == "-":
            self._advance()
            return E.BinOp("*", E.Const(-1.0), self.parse_unary())
        return self.parse_atom()

    def parse_atom(self) -> E.Expr:
        token = self.current
        if token.kind == "NUMBER":
            self._advance()
            return E.Const(float(token.text))
        if token.kind == "NAME":
            self._advance()
            if self.current.kind == "LBRACKET":
                offsets = self._parse_offsets()
                return E.GridAccess(token.text, offsets)
            return E.Param(token.text)
        if token.kind == "LPAREN":
            self._advance()
            node = self.parse_expr()
            self._expect("RPAREN", "')'")
            return node
        raise StencilParseError(
            f"expected a value, found {token.text or 'end'!r}",
            token.pos,
            self.text,
        )

    def _parse_offsets(self) -> tuple[int, ...]:
        self._expect("LBRACKET", "'['")
        offsets = [self._parse_int()]
        while self.current.kind == "COMMA":
            self._advance()
            offsets.append(self._parse_int())
        self._expect("RBRACKET", "']'")
        return tuple(offsets)

    def _parse_int(self) -> int:
        sign = 1
        if self.current.kind == "OP" and self.current.text in "+-":
            sign = -1 if self._advance().text == "-" else 1
        token = self._expect("NUMBER", "an integer offset")
        if "." in token.text or "e" in token.text or "E" in token.text:
            raise StencilParseError(
                "offsets must be integers", token.pos, self.text
            )
        return sign * int(token.text)


def parse_expr(text: str) -> E.Expr:
    """Parse an expression (no assignment)."""
    parser = _Parser(text)
    node = parser.parse_expr()
    parser._expect("END", "end of input")
    return node


def parse_stencil(
    text: str,
    name: str = "parsed",
    params: dict[str, float] | None = None,
    dtype_bytes: int = 8,
) -> StencilSpec:
    """Parse ``"out[0,...] = expr"`` into a :class:`StencilSpec`."""
    output, _, expr = _Parser(text).parse_assignment()
    return StencilSpec(
        name=name,
        output=output,
        expr=expr,
        params=params or {},
        dtype_bytes=dtype_bytes,
    )

"""Stencil specification: output grid + update expression + derived facts."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.stencil import expr as E


class StencilKind(enum.Enum):
    """Geometric classification of the access pattern."""

    STAR = "star"
    BOX = "box"
    OTHER = "other"


@dataclass(frozen=True)
class StencilSpec:
    """A single-statement stencil ``output[i...] = expr``.

    The spec is the unit everything else consumes: the code generator
    lowers it to loops, the ECM model derives traffic from its offsets,
    and the cache simulator replays its access stream.

    Parameters
    ----------
    name:
        Identifier for tables and generated code.
    output:
        Name of the written grid.
    expr:
        Update expression; must read at least one grid.
    params:
        Default values for scalar :class:`~repro.stencil.expr.Param`
        leaves in the expression.
    dtype_bytes:
        Element width (8 = double precision, the paper's setting).
    """

    name: str
    output: str
    expr: E.Expr
    params: dict[str, float] = field(default_factory=dict)
    dtype_bytes: int = 8

    def __post_init__(self) -> None:
        if not self.name.isidentifier():
            raise ValueError(f"stencil name {self.name!r} is not an identifier")
        missing = set(E.params_used(self.expr)) - set(self.params)
        if missing:
            raise ValueError(f"no default value for parameters {sorted(missing)}")
        # Trigger the uniform-dimensionality check early.
        E.dimensionality(self.expr)
        if self.dtype_bytes not in (4, 8):
            raise ValueError("dtype_bytes must be 4 or 8")

    # ------------------------------------------------------------------
    # Derived geometric / arithmetic facts
    # ------------------------------------------------------------------
    @property
    def dim(self) -> int:
        """Spatial dimensionality."""
        return E.dimensionality(self.expr)

    @property
    def radius(self) -> int:
        """Maximum absolute offset component."""
        return E.radius(self.expr)

    @property
    def reads(self) -> tuple[str, ...]:
        """Names of grids read."""
        return E.grids_read(self.expr)

    @property
    def grids(self) -> tuple[str, ...]:
        """All grids involved (reads plus the output), sorted."""
        return tuple(sorted(set(self.reads) | {self.output}))

    @property
    def in_place(self) -> bool:
        """True if the output grid is also read (Gauss-Seidel style)."""
        return self.output in self.reads

    @property
    def offsets(self) -> dict[str, set[tuple[int, ...]]]:
        """Per-grid access offsets."""
        return E.grid_offsets(self.expr)

    @property
    def n_accesses(self) -> int:
        """Distinct grid reads per lattice update (plus one store)."""
        return sum(len(offs) for offs in self.offsets.values())

    @property
    def flops(self) -> int:
        """Floating-point operations per lattice update."""
        return E.total_flops(self.expr)

    @property
    def kind(self) -> StencilKind:
        """Star, box or other, judged from the main input grid's offsets."""
        main = self._main_input()
        offs = self.offsets[main]
        r = max((max(abs(o) for o in off) if off else 0) for off in offs)
        star = _star_offsets(self.dim, r)
        box = _box_offsets(self.dim, r)
        if offs == star:
            return StencilKind.STAR
        if offs == box:
            return StencilKind.BOX
        return StencilKind.OTHER

    def _main_input(self) -> str:
        """The read grid with the most accesses (the 'stencil' grid)."""
        return max(self.offsets, key=lambda g: (len(self.offsets[g]), g))

    # ------------------------------------------------------------------
    # Traffic / intensity bookkeeping used by models and tables
    # ------------------------------------------------------------------
    def code_balance_bytes(self, write_allocate: bool = True) -> float:
        """Minimum main-memory bytes per lattice update (perfect cache).

        One streaming read per distinct input grid, one write for the
        output, plus the write-allocate read of the output line.
        """
        n_streams = len(self.reads)
        writes = 1
        wa = 1 if write_allocate and not self.in_place else 0
        return (n_streams + writes + wa) * self.dtype_bytes

    def arithmetic_intensity(self, write_allocate: bool = True) -> float:
        """Flops per main-memory byte, assuming perfect in-cache reuse."""
        return self.flops / self.code_balance_bytes(write_allocate)

    def describe(self) -> dict[str, object]:
        """Characteristics row for the suite table (experiment T2)."""
        return {
            "name": self.name,
            "dim": self.dim,
            "kind": self.kind.value,
            "radius": self.radius,
            "grids": len(self.grids),
            "reads/LUP": self.n_accesses,
            "flops/LUP": self.flops,
            "bytes/LUP": self.code_balance_bytes(),
            "AI (F/B)": round(self.arithmetic_intensity(), 3),
        }

    def __str__(self) -> str:
        return f"{self.name}: {self.output}[0] = {self.expr}"


def _star_offsets(dim: int, r: int) -> set[tuple[int, ...]]:
    offs = {tuple([0] * dim)}
    for axis in range(dim):
        for k in range(1, r + 1):
            for sign in (-1, 1):
                off = [0] * dim
                off[axis] = sign * k
                offs.add(tuple(off))
    return offs


def _box_offsets(dim: int, r: int) -> set[tuple[int, ...]]:
    from itertools import product

    return set(product(range(-r, r + 1), repeat=dim))

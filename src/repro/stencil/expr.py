"""Expression AST for stencil update rules.

The AST is deliberately small: grid accesses at constant offsets,
floating-point constants, named scalar parameters, and binary
arithmetic.  This covers the whole YASK-style constant- and
variable-coefficient stencil space the paper tunes, while keeping every
analysis (flop counting, offset extraction, NumPy evaluation, C
emission) a short structural recursion.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Union

Number = Union[int, float]

_BINOPS = {"+", "-", "*", "/"}


class Expr:
    """Base class for stencil expressions; supports operator overloading."""

    def __add__(self, other: "Expr | Number") -> "BinOp":
        return BinOp("+", self, _wrap(other))

    def __radd__(self, other: Number) -> "BinOp":
        return BinOp("+", _wrap(other), self)

    def __sub__(self, other: "Expr | Number") -> "BinOp":
        return BinOp("-", self, _wrap(other))

    def __rsub__(self, other: Number) -> "BinOp":
        return BinOp("-", _wrap(other), self)

    def __mul__(self, other: "Expr | Number") -> "BinOp":
        return BinOp("*", self, _wrap(other))

    def __rmul__(self, other: Number) -> "BinOp":
        return BinOp("*", _wrap(other), self)

    def __truediv__(self, other: "Expr | Number") -> "BinOp":
        return BinOp("/", self, _wrap(other))

    def __rtruediv__(self, other: Number) -> "BinOp":
        return BinOp("/", _wrap(other), self)

    def __neg__(self) -> "BinOp":
        return BinOp("*", Const(-1.0), self)

    def children(self) -> tuple["Expr", ...]:
        """Direct sub-expressions (empty for leaves)."""
        return ()

    def walk(self) -> Iterator["Expr"]:
        """Pre-order traversal over the whole expression tree."""
        yield self
        for child in self.children():
            yield from child.walk()


def _wrap(value: "Expr | Number") -> Expr:
    if isinstance(value, Expr):
        return value
    if isinstance(value, (int, float)):
        return Const(float(value))
    raise TypeError(f"cannot use {type(value).__name__} in a stencil expression")


@dataclass(frozen=True)
class GridAccess(Expr):
    """Read of grid ``grid`` at a constant offset from the update point."""

    grid: str
    offsets: tuple[int, ...]

    def __post_init__(self) -> None:
        if not self.grid:
            raise ValueError("grid name must be non-empty")
        if not all(isinstance(o, int) for o in self.offsets):
            raise TypeError("offsets must be integers")

    def __str__(self) -> str:
        idx = ",".join(f"{o:+d}" for o in self.offsets)
        return f"{self.grid}[{idx}]"


@dataclass(frozen=True)
class Const(Expr):
    """Floating-point literal."""

    value: float

    def __str__(self) -> str:
        return repr(self.value)


@dataclass(frozen=True)
class Param(Expr):
    """Named scalar runtime parameter (e.g. a diffusion coefficient)."""

    name: str

    def __post_init__(self) -> None:
        if not self.name.isidentifier():
            raise ValueError(f"parameter name {self.name!r} is not an identifier")

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class BinOp(Expr):
    """Binary arithmetic node."""

    op: str
    lhs: Expr
    rhs: Expr

    def __post_init__(self) -> None:
        if self.op not in _BINOPS:
            raise ValueError(f"unsupported operator {self.op!r}")

    def children(self) -> tuple[Expr, ...]:
        return (self.lhs, self.rhs)

    def __str__(self) -> str:
        return f"({self.lhs} {self.op} {self.rhs})"


class _AccessBuilder:
    """Helper so users can write ``access("u")(0, 1, -1)``."""

    def __init__(self, grid: str) -> None:
        self._grid = grid

    def __call__(self, *offsets: int) -> GridAccess:
        return GridAccess(self._grid, tuple(offsets))


def access(grid: str) -> _AccessBuilder:
    """Return a builder producing accesses into ``grid``.

    >>> u = access("u")
    >>> str(u(0, 1))
    'u[+0,+1]'
    """
    return _AccessBuilder(grid)


# ----------------------------------------------------------------------
# Structural analyses
# ----------------------------------------------------------------------
def count_flops(expr: Expr) -> dict[str, int]:
    """Count arithmetic operations by kind.

    Multiplications by literal ``-1`` (from unary negation) are counted
    like any other multiply, matching what straightforward codegen emits.
    """
    counts = {"+": 0, "-": 0, "*": 0, "/": 0}
    for node in expr.walk():
        if isinstance(node, BinOp):
            counts[node.op] += 1
    return counts


def total_flops(expr: Expr) -> int:
    """Total floating-point operations per lattice update."""
    return sum(count_flops(expr).values())


def grid_offsets(expr: Expr) -> dict[str, set[tuple[int, ...]]]:
    """Map each grid read by ``expr`` to the set of offsets accessed."""
    result: dict[str, set[tuple[int, ...]]] = {}
    for node in expr.walk():
        if isinstance(node, GridAccess):
            result.setdefault(node.grid, set()).add(node.offsets)
    return result


def grids_read(expr: Expr) -> tuple[str, ...]:
    """Sorted names of grids read by ``expr``."""
    return tuple(sorted(grid_offsets(expr)))


def params_used(expr: Expr) -> tuple[str, ...]:
    """Sorted names of scalar parameters referenced by ``expr``."""
    names = {node.name for node in expr.walk() if isinstance(node, Param)}
    return tuple(sorted(names))


def radius(expr: Expr) -> int:
    """Largest absolute offset component over all grid accesses."""
    r = 0
    for node in expr.walk():
        if isinstance(node, GridAccess):
            for off in node.offsets:
                r = max(r, abs(off))
    return r


def dimensionality(expr: Expr) -> int:
    """Number of spatial dimensions of the accesses (must be uniform)."""
    dims = {
        len(node.offsets) for node in expr.walk() if isinstance(node, GridAccess)
    }
    if not dims:
        raise ValueError("expression reads no grid, dimensionality undefined")
    if len(dims) != 1:
        raise ValueError(f"inconsistent access dimensionalities: {sorted(dims)}")
    return dims.pop()

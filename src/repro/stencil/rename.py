"""Grid renaming: rewire a stencil spec onto different field names.

Needed to compose library stencils into multi-equation solutions
(``u_new`` of one equation becomes the input of the next) and to map
Offsite stage kernels onto their stage buffers.
"""

from __future__ import annotations

from repro.stencil import expr as E
from repro.stencil.spec import StencilSpec


def rename_expr(expr: E.Expr, mapping: dict[str, str]) -> E.Expr:
    """Rewrite grid names in an expression tree."""
    if isinstance(expr, E.GridAccess):
        return E.GridAccess(mapping.get(expr.grid, expr.grid), expr.offsets)
    if isinstance(expr, E.BinOp):
        return E.BinOp(
            expr.op,
            rename_expr(expr.lhs, mapping),
            rename_expr(expr.rhs, mapping),
        )
    return expr


def rename_grids(
    spec: StencilSpec,
    mapping: dict[str, str],
    name: str | None = None,
) -> StencilSpec:
    """Return a copy of ``spec`` with grids renamed via ``mapping``.

    The mapping may cover any subset of the spec's grids (including the
    output); collisions between distinct renamed grids are rejected.
    """
    targets = [mapping.get(g, g) for g in spec.grids]
    if len(set(targets)) != len(targets):
        raise ValueError(f"renaming collides: {mapping}")
    return StencilSpec(
        name=name or spec.name,
        output=mapping.get(spec.output, spec.output),
        expr=rename_expr(spec.expr, mapping),
        params=dict(spec.params),
        dtype_bytes=spec.dtype_bytes,
    )

"""Stencil DSL: expression AST, stencil specifications and a suite library.

The DSL plays the role of YASK's stencil description language.  A
:class:`~repro.stencil.StencilSpec` binds a named output grid to an
expression over neighbouring grid points; everything downstream
(code generation, ECM analysis, cache simulation) consumes the spec.
"""

from repro.stencil.expr import (
    BinOp,
    Const,
    Expr,
    GridAccess,
    Param,
    access,
    count_flops,
    grid_offsets,
    grids_read,
)
from repro.stencil.spec import StencilKind, StencilSpec
from repro.stencil.builders import (
    box,
    heat,
    long_range,
    star,
    variable_coefficient_star,
)
from repro.stencil.library import STENCIL_SUITE, get_stencil, suite_table
from repro.stencil.rename import rename_expr, rename_grids
from repro.stencil.solution import Solution
from repro.stencil.parser import StencilParseError, parse_expr, parse_stencil

__all__ = [
    "Expr",
    "GridAccess",
    "Const",
    "Param",
    "BinOp",
    "access",
    "count_flops",
    "grid_offsets",
    "grids_read",
    "StencilSpec",
    "StencilKind",
    "star",
    "box",
    "heat",
    "long_range",
    "variable_coefficient_star",
    "STENCIL_SUITE",
    "get_stencil",
    "suite_table",
    "rename_expr",
    "rename_grids",
    "Solution",
    "parse_expr",
    "parse_stencil",
    "StencilParseError",
]

"""The stencil suite used across the reconstructed experiments.

Mirrors the canonical YASK/YaskSite workload mix: short- and long-range
3D stars, the dense 27-point box, a variable-coefficient star, and the
radius-1 heat kernels that back the ODE experiments.
"""

from __future__ import annotations

from typing import Callable

from repro.stencil.builders import (
    box,
    heat,
    long_range,
    star,
    variable_coefficient_star,
)
from repro.stencil.spec import StencilSpec

_FACTORIES: dict[str, Callable[[], StencilSpec]] = {
    "3d7pt": lambda: star(3, 1, name="s3d7pt"),
    "3d13pt": lambda: star(3, 2, name="s3d13pt"),
    "3d25pt": lambda: star(3, 4, name="s3d25pt"),
    "3d27pt": lambda: box(3, 1, name="s3d27pt"),
    "3dlong_r4": lambda: long_range(3, 4, name="s3dlong_r4"),
    "3dvarcoef": lambda: variable_coefficient_star(3, 1, name="s3dvarcoef"),
    "heat2d": lambda: heat(2),
    "heat3d": lambda: heat(3),
    "2d5pt": lambda: star(2, 1, name="s2d5pt"),
    "2d9pt_box": lambda: box(2, 1, name="s2d9pt_box"),
}

#: Names of the full evaluation suite, in table order.
STENCIL_SUITE: tuple[str, ...] = tuple(_FACTORIES)


def get_stencil(name: str) -> StencilSpec:
    """Instantiate a suite stencil by short name (see ``STENCIL_SUITE``)."""
    try:
        return _FACTORIES[name]()
    except KeyError:
        raise KeyError(
            f"unknown stencil {name!r}; choose from {sorted(_FACTORIES)}"
        ) from None


def suite_table() -> list[dict[str, object]]:
    """Characteristics of every suite stencil (experiment T2 rows)."""
    return [get_stencil(name).describe() for name in STENCIL_SUITE]

"""Builders for the standard stencil families the paper evaluates."""

from __future__ import annotations

from itertools import product

from repro.stencil.expr import Const, Expr, GridAccess, Param
from repro.stencil.spec import StencilSpec


def _axis_offset(dim: int, axis: int, k: int) -> tuple[int, ...]:
    off = [0] * dim
    off[axis] = k
    return tuple(off)


def star(
    dim: int,
    radius: int,
    name: str | None = None,
    symmetric_coeffs: bool = True,
) -> StencilSpec:
    """Jacobi star stencil of the given dimension and radius.

    ``u_new = c0*u[0] + sum_axis sum_k c_k (u[-k] + u[+k])`` with
    distinct constant coefficients per distance (and per axis when
    ``symmetric_coeffs`` is false), matching the constant-coefficient
    star family YASK ships.
    """
    if dim < 1 or radius < 1:
        raise ValueError("star stencil needs dim >= 1 and radius >= 1")
    center = GridAccess("u", tuple([0] * dim))
    expr: Expr = Const(0.25) * center
    coeff_index = 0
    for axis in range(dim):
        for k in range(1, radius + 1):
            if symmetric_coeffs:
                coeff = Const(round(0.5 / (2 * dim * radius) * (1 + 0.1 * k), 12))
            else:
                coeff_index += 1
                coeff = Const(round(0.01 * coeff_index + 0.1, 12))
            plus = GridAccess("u", _axis_offset(dim, axis, k))
            minus = GridAccess("u", _axis_offset(dim, axis, -k))
            expr = expr + coeff * (plus + minus)
    return StencilSpec(
        name=name or f"star{dim}d_r{radius}",
        output="u_new",
        expr=expr,
    )


def box(dim: int, radius: int, name: str | None = None) -> StencilSpec:
    """Dense box stencil (``(2r+1)^dim`` points, constant coefficients)."""
    if dim < 1 or radius < 1:
        raise ValueError("box stencil needs dim >= 1 and radius >= 1")
    n_points = (2 * radius + 1) ** dim
    coeff = Const(round(1.0 / n_points, 12))
    expr: Expr | None = None
    for off in product(range(-radius, radius + 1), repeat=dim):
        term = coeff * GridAccess("u", off)
        expr = term if expr is None else expr + term
    assert expr is not None
    return StencilSpec(
        name=name or f"box{dim}d_r{radius}",
        output="u_new",
        expr=expr,
    )


def heat(dim: int, name: str | None = None) -> StencilSpec:
    """Heat-equation Jacobi update ``u + a*(laplacian)`` (radius-1 star).

    This is the RHS shape of the Heat IVPs used with Offsite; ``a``
    is the combined ``alpha*dt/dx^2`` parameter.
    """
    if dim < 1:
        raise ValueError("heat stencil needs dim >= 1")
    center = GridAccess("u", tuple([0] * dim))
    alpha = Param("a")
    lap: Expr = Const(-2.0 * dim) * center
    for axis in range(dim):
        lap = lap + GridAccess("u", _axis_offset(dim, axis, 1))
        lap = lap + GridAccess("u", _axis_offset(dim, axis, -1))
    return StencilSpec(
        name=name or f"heat{dim}d",
        output="u_new",
        expr=center + alpha * lap,
        params={"a": 0.1},
    )


def long_range(dim: int, radius: int, name: str | None = None) -> StencilSpec:
    """Axis-aligned long-range star with per-distance decaying weights.

    Radius-4 instances of this family are the classic "hard" case for
    spatial blocking (many in-flight planes), which is why the block
    sweep experiment F2 uses it.
    """
    if radius < 2:
        raise ValueError("long_range is meant for radius >= 2")
    center = GridAccess("u", tuple([0] * dim))
    expr: Expr = Const(0.5) * center
    for axis in range(dim):
        for k in range(1, radius + 1):
            weight = Const(round(0.5 / (2 * dim) / (k * (k + 1)), 12))
            expr = expr + weight * (
                GridAccess("u", _axis_offset(dim, axis, k))
                + GridAccess("u", _axis_offset(dim, axis, -k))
            )
    return StencilSpec(
        name=name or f"longrange{dim}d_r{radius}",
        output="u_new",
        expr=expr,
    )


def variable_coefficient_star(
    dim: int, radius: int = 1, name: str | None = None
) -> StencilSpec:
    """Star stencil with a per-point coefficient grid per axis.

    Adds ``dim`` extra read-only streams, lowering arithmetic intensity —
    the case where memory-traffic modelling matters most.
    """
    if dim < 1 or radius < 1:
        raise ValueError("needs dim >= 1 and radius >= 1")
    center = GridAccess("u", tuple([0] * dim))
    expr: Expr = Const(0.25) * center
    zero = tuple([0] * dim)
    for axis in range(dim):
        coeff = GridAccess(f"c{axis}", zero)
        for k in range(1, radius + 1):
            expr = expr + coeff * (
                GridAccess("u", _axis_offset(dim, axis, k))
                + GridAccess("u", _axis_offset(dim, axis, -k))
            )
    return StencilSpec(
        name=name or f"varcoef{dim}d_r{radius}",
        output="u_new",
        expr=expr,
    )

"""SLO telemetry: mergeable histograms, burn-rate alerting, exposition.

The package applies the paper's discipline — declared analytic
expectations continuously checked against measured reality — to the
service itself:

:mod:`repro.telemetry.histogram`
    :class:`LatencyHistogram` — fixed-log-bucket latency histograms
    that **merge exactly** across shards by plain bucket addition, with
    quantile readout inside a documented relative error bound.
:mod:`repro.telemetry.slo`
    :class:`SloEngine` — declarative objectives (availability, latency
    threshold+quantile, cache-tier hit-rate floor, shed-rate ceiling)
    evaluated by multi-window burn-rate alerting (fast 1m/5m page
    windows, slow 30m/6h warn windows).
:mod:`repro.telemetry.recorder`
    :class:`FlightRecorder` — a bounded ring of structured per-request
    records so a p99 regression or burn alert can be attributed to the
    actual requests without re-running load.
:mod:`repro.telemetry.prom`
    Prometheus text exposition (``render_prometheus``) and a tiny
    dependency-free checker (``parse_prometheus``) used by CI.

Everything here is off-or-inert by default: histograms and the flight
recorder record cheaply but are only *exposed* on request, and the SLO
engine exists only when objectives were configured.
"""

from repro.telemetry.histogram import LatencyHistogram
from repro.telemetry.prom import parse_prometheus, render_prometheus
from repro.telemetry.recorder import FlightRecorder
from repro.telemetry.slo import (
    DEFAULT_SLO_CONFIG,
    SloEngine,
    load_slo_config,
)

__all__ = [
    "LatencyHistogram",
    "FlightRecorder",
    "SloEngine",
    "DEFAULT_SLO_CONFIG",
    "load_slo_config",
    "render_prometheus",
    "parse_prometheus",
]

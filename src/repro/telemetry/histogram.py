"""Mergeable fixed-log-bucket latency histograms.

The :class:`~repro.service.metrics.LatencyReservoir` keeps raw samples,
which makes its percentiles exact for one process but **unsummable**
across shards — you cannot pool two reservoirs without the raw streams.
:class:`LatencyHistogram` trades a bounded relative error for exact
mergeability: every histogram in the system shares one fixed bucket
layout, so merging is plain element-wise addition and the merge of N
shard histograms is *identical* to the histogram of the pooled sample
stream (the property test asserts this bit-for-bit).

Layout
------
Buckets are geometric with :data:`BUCKETS_PER_OCTAVE` buckets per
factor of two, spanning (:data:`MIN_BOUND_S`, :data:`MAX_BOUND_S`]:
bucket ``i`` covers ``(MIN_BOUND_S * 2**(i/BPO), MIN_BOUND_S *
2**((i+1)/BPO)]``.  Samples at or below ``MIN_BOUND_S`` land in an
underflow bucket, samples above the top bound in an overflow bucket, so
``count`` is always exact.

Quantile error bound
--------------------
A quantile is reported as the geometric midpoint of its bucket, so for
any in-range sample distribution the reported value is within a factor
``2**(1 / (2 * BUCKETS_PER_OCTAVE))`` of the true sample quantile —
:data:`QUANTILE_REL_ERROR` (≈ 4.4% with 8 buckets per octave).
Underflow/overflow quantiles clamp to the range edge.
"""

from __future__ import annotations

import math

__all__ = [
    "BUCKETS_PER_OCTAVE",
    "MIN_BOUND_S",
    "MAX_BOUND_S",
    "N_BUCKETS",
    "QUANTILE_REL_ERROR",
    "LatencyHistogram",
]

#: Geometric resolution: buckets per factor-of-two of latency.
BUCKETS_PER_OCTAVE = 8

#: Lower edge of the finite bucket range (10 µs).  Faster requests are
#: counted in the underflow bucket — they are far below any latency SLO.
MIN_BOUND_S = 1e-5

#: Upper edge of the finite bucket range.  Slower requests are counted
#: in the overflow bucket (the service's own deadlines sit well below).
MAX_BOUND_S = 1e3

#: Finite buckets between the two bounds.
N_BUCKETS = math.ceil(
    math.log2(MAX_BOUND_S / MIN_BOUND_S) * BUCKETS_PER_OCTAVE
)

#: Worst-case relative error of a quantile readout (in-range samples):
#: half a bucket in log space.
QUANTILE_REL_ERROR = 2.0 ** (1.0 / (2 * BUCKETS_PER_OCTAVE)) - 1.0

#: Identifies the layout in serialized form; merging rejects mismatches
#: so a rolling-upgrade fleet can never silently sum unlike layouts.
_LAYOUT = f"log2x{BUCKETS_PER_OCTAVE}@{MIN_BOUND_S:g}:{MAX_BOUND_S:g}"

_UNDERFLOW = -1  # serialized index of the underflow bucket
_OVERFLOW = N_BUCKETS  # serialized index of the overflow bucket

_LOG2_MIN = math.log2(MIN_BOUND_S)
_INV_LOG2 = BUCKETS_PER_OCTAVE  # buckets per log2 unit


class LatencyHistogram:
    """Latency distribution in the fixed shared bucket layout.

    ``record`` is O(1) (one ``log2`` + one list increment); ``merge``
    is element-wise addition; ``quantile`` walks the cumulative counts.
    Not locked — callers (``ServiceMetrics``) hold their own lock.
    """

    __slots__ = ("_counts", "count", "sum_s")

    def __init__(self) -> None:
        # index 0 = underflow, 1..N_BUCKETS = finite, N_BUCKETS+1 = overflow
        self._counts = [0] * (N_BUCKETS + 2)
        self.count = 0
        self.sum_s = 0.0

    # -- recording ------------------------------------------------------
    @staticmethod
    def bucket_index(seconds: float) -> int:
        """Serialized bucket index of one sample (deterministic, shared
        by every histogram, so merge == pooled holds exactly)."""
        if seconds <= MIN_BOUND_S:
            return _UNDERFLOW
        idx = math.ceil(
            (math.log2(seconds) - _LOG2_MIN) * _INV_LOG2
        ) - 1
        if idx < 0:  # float fuzz just above MIN_BOUND_S
            return 0
        if idx >= N_BUCKETS:
            return _OVERFLOW
        return idx

    def record(self, seconds: float) -> None:
        """Count one latency sample (in seconds)."""
        self._counts[self.bucket_index(seconds) + 1] += 1
        self.count += 1
        self.sum_s += seconds

    # -- bucket geometry ------------------------------------------------
    @staticmethod
    def bucket_upper_s(index: int) -> float:
        """Upper bound (seconds) of serialized bucket ``index``."""
        if index <= _UNDERFLOW:
            return MIN_BOUND_S
        if index >= _OVERFLOW:
            return math.inf
        return 2.0 ** (_LOG2_MIN + (index + 1) / BUCKETS_PER_OCTAVE)

    @staticmethod
    def bucket_mid_s(index: int) -> float:
        """Representative value (seconds) of serialized bucket
        ``index``: the geometric midpoint, clamped at the range edges."""
        if index <= _UNDERFLOW:
            return MIN_BOUND_S
        if index >= _OVERFLOW:
            return MAX_BOUND_S
        return 2.0 ** (_LOG2_MIN + (index + 0.5) / BUCKETS_PER_OCTAVE)

    # -- readout --------------------------------------------------------
    def quantile(self, q: float) -> float | None:
        """The ``q``-quantile in seconds (``None`` when empty).

        Within :data:`QUANTILE_REL_ERROR` of the true sample quantile
        for in-range samples; clamped at the range edges outside it.
        """
        if self.count == 0:
            return None
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        # Same rank convention as LatencyReservoir.percentiles:
        # round(q * (n - 1)) into the ordered samples, zero-based.
        rank = min(self.count - 1, max(0, round(q * (self.count - 1))))
        cumulative = 0
        for slot, bucket_count in enumerate(self._counts):
            cumulative += bucket_count
            if cumulative > rank:
                return self.bucket_mid_s(slot - 1)
        return self.bucket_mid_s(_OVERFLOW)  # unreachable

    def percentiles(self) -> dict[str, float | None]:
        """p50/p95/p99 in milliseconds (same shape as the reservoir)."""
        out: dict[str, float | None] = {}
        for name, q in (("p50_ms", 0.50), ("p95_ms", 0.95), ("p99_ms", 0.99)):
            value = self.quantile(q)
            out[name] = None if value is None else value * 1e3
        return out

    # -- merge + serialization ------------------------------------------
    def merge(self, other: "LatencyHistogram") -> "LatencyHistogram":
        """Add ``other``'s buckets into this histogram (in place)."""
        counts = other._counts
        mine = self._counts
        for slot in range(len(mine)):
            mine[slot] += counts[slot]
        self.count += other.count
        self.sum_s += other.sum_s
        return self

    def nonzero(self) -> list[tuple[int, int]]:
        """``(serialized_index, count)`` of every populated bucket."""
        return [
            (slot - 1, n) for slot, n in enumerate(self._counts) if n
        ]

    def to_dict(self) -> dict:
        """JSON-ready sparse form (bucket rows keyed by serialized
        index; ``-1`` underflow, ``N_BUCKETS`` overflow)."""
        return {
            "layout": _LAYOUT,
            "count": self.count,
            "sum_s": self.sum_s,
            "buckets": {str(i): n for i, n in self.nonzero()},
        }

    @classmethod
    def from_dict(cls, data: dict) -> "LatencyHistogram":
        """Rebuild from :meth:`to_dict` output (layout is verified)."""
        layout = data.get("layout")
        if layout != _LAYOUT:
            raise ValueError(
                f"histogram layout mismatch: {layout!r} != {_LAYOUT!r}"
            )
        hist = cls()
        total = 0
        for key, n in data.get("buckets", {}).items():
            index = int(key)
            if not _UNDERFLOW <= index <= _OVERFLOW:
                raise ValueError(f"bucket index {index} out of range")
            hist._counts[index + 1] = int(n)
            total += int(n)
        declared = int(data.get("count", total))
        if declared != total:
            raise ValueError(
                f"histogram count {declared} != bucket sum {total}"
            )
        hist.count = total
        hist.sum_s = float(data.get("sum_s", 0.0))
        return hist

    @classmethod
    def merged(cls, dicts) -> "LatencyHistogram":
        """Merge an iterable of :meth:`to_dict` forms into one
        histogram (the fabric fan-in path)."""
        out = cls()
        for data in dicts:
            out.merge(cls.from_dict(data))
        return out

"""Declarative SLOs evaluated by multi-window burn-rate alerting.

An *objective* declares an expectation about the service the same way
the ECM model declares one about a kernel: a target, checked
continuously against measurement, with loud attributable divergence.
Four objective types cover the service's failure surface:

``availability``
    At most ``1 - target`` of requests may fail (outcome ``failed``).
``latency``
    At least ``quantile`` of served requests must finish within
    ``threshold_ms`` (sheds are excluded — a refused request has no
    service latency).
``hit_rate``
    A cache tier's windowed hit rate must stay at or above ``floor``
    (the budget is ``1 - floor`` of lookups missing).
``shed_rate``
    At most ``ceiling`` of requests may be shed (429/503 refusals).

Each objective burns an *error budget*: ``burn_rate = bad_fraction /
budget`` over a sliding window, so ``burn_rate == 1.0`` means "exactly
on target" and 14.4 means "spending a 30-day budget in ~2 days".
Following the Google SRE multi-window multi-burn-rate shape, an
objective **pages** when both fast windows (default 1m and 5m) burn at
or above ``burn.page`` (default 14.4) and **warns** when both slow
windows (default 30m and 6h) burn at or above ``burn.warn`` (default
6.0) — the short window makes alerts recover quickly, the long window
keeps blips from paging.

The engine is fed inline (``observe`` per finished request, one lock,
a handful of integer bumps per window) and evaluated lazily on read —
there is no background task, so an idle server pays nothing.
"""

from __future__ import annotations

import json
import os
import threading
import time

__all__ = [
    "DEFAULT_SLO_CONFIG",
    "OBJECTIVE_TYPES",
    "WindowCounter",
    "SloEngine",
    "load_slo_config",
]

OBJECTIVE_TYPES = ("availability", "latency", "hit_rate", "shed_rate")

#: Shipped objectives: inert-but-honest defaults for ``--slo`` without
#: a config file.  The latency threshold is deliberately generous (the
#: service's own deadlines are the hard bound); the hit-rate floor is
#: low because cold caches are a normal state, not an incident.
DEFAULT_SLO_CONFIG: dict = {
    "windows": {"page": [60.0, 300.0], "warn": [1800.0, 21600.0]},
    "burn": {"page": 14.4, "warn": 6.0},
    "objectives": [
        {"name": "availability", "type": "availability", "target": 0.999},
        {
            "name": "latency-p95",
            "type": "latency",
            "quantile": 0.95,
            "threshold_ms": 500.0,
        },
        {
            "name": "response-hit-rate",
            "type": "hit_rate",
            "tier": "response",
            "floor": 0.10,
        },
        {"name": "shed-rate", "type": "shed_rate", "ceiling": 0.05},
    ],
}

#: Outcomes that count as refusals for the shed objective (and are
#: excluded from latency observations).
_SHED_OUTCOMES = ("shed",)

#: Outcomes that count as failures for availability.
_FAILED_OUTCOMES = ("failed",)


def _window_label(seconds: float) -> str:
    """Human window name: 60 -> "1m", 21600 -> "6h", 2.5 -> "2.5s"."""
    for unit, div in (("h", 3600.0), ("m", 60.0)):
        if seconds >= div and seconds % div == 0:
            return f"{int(seconds // div)}{unit}"
    text = f"{seconds:g}"
    return f"{text}s"


class WindowCounter:
    """Good/bad counts over one sliding window.

    A ring of ``slots`` sub-buckets (plus one being retired) at
    ``window_s / slots`` resolution: ``add`` bumps the current slot,
    ``totals`` sums the ring.  The window is accurate to one slot
    (≤ window/60 by default) — plenty for alerting, and O(slots)
    memory regardless of traffic.  Not locked; the engine locks.
    """

    __slots__ = ("window_s", "resolution_s", "_good", "_bad", "_last_idx")

    def __init__(self, window_s: float, slots: int = 60) -> None:
        if window_s <= 0:
            raise ValueError("window_s must be positive")
        self.window_s = float(window_s)
        self.resolution_s = self.window_s / slots
        self._good = [0] * (slots + 1)
        self._bad = [0] * (slots + 1)
        self._last_idx: int | None = None

    def _advance(self, now: float) -> int:
        """Retire slots that slid out of the window; return the live slot."""
        idx = int(now // self.resolution_s)
        n = len(self._good)
        if self._last_idx is None:
            self._last_idx = idx
        step = min(idx - self._last_idx, n)
        for k in range(1, step + 1):
            slot = (self._last_idx + k) % n
            self._good[slot] = 0
            self._bad[slot] = 0
        if idx > self._last_idx:
            self._last_idx = idx
        return self._last_idx % n

    def add(self, now: float, good: int = 0, bad: int = 0) -> None:
        slot = self._advance(now)
        self._good[slot] += good
        self._bad[slot] += bad

    def totals(self, now: float) -> tuple[int, int]:
        """``(good, bad)`` inside the window ending at ``now``."""
        self._advance(now)
        return sum(self._good), sum(self._bad)


class _Objective:
    """One configured objective + its per-window counters."""

    def __init__(self, spec: dict, windows: dict[str, list[float]]) -> None:
        self.spec = spec
        self.name = spec["name"]
        self.type = spec["type"]
        self.endpoint = spec.get("endpoint", "*")
        self.tier = spec.get("tier")
        self.threshold_s = float(spec.get("threshold_ms", 0.0)) / 1e3
        # The error budget: what fraction of events may be bad.
        if self.type == "availability":
            self.budget = 1.0 - float(spec["target"])
        elif self.type == "latency":
            self.budget = 1.0 - float(spec["quantile"])
        elif self.type == "hit_rate":
            self.budget = 1.0 - float(spec["floor"])
        else:  # shed_rate
            self.budget = float(spec["ceiling"])
        if not 0.0 < self.budget <= 1.0:
            raise ValueError(
                f"objective {self.name!r}: error budget must be in (0, 1],"
                f" got {self.budget}"
            )
        # A hit-rate floor leaves a large budget (1 - floor), so the
        # global multi-burn thresholds (14.4/6.0) are unreachable —
        # burn >= 1.0 already means "at or below the floor".  Such
        # objectives default to threshold 1.0; any objective may
        # override via a per-objective "burn" mapping.
        default_burn = (
            {"page": 1.0, "warn": 1.0} if self.type == "hit_rate" else {}
        )
        override = spec.get("burn") or {}
        if not isinstance(override, dict):
            raise ValueError(
                f"objective {self.name!r}: burn must be an object"
            )
        self.burn_override = {**default_burn, **override}
        for severity, threshold in self.burn_override.items():
            if severity not in ("page", "warn") or float(threshold) <= 0:
                raise ValueError(
                    f"objective {self.name!r}: bad burn override"
                    f" {severity!r}: {threshold!r}"
                )
        self.counters: dict[str, WindowCounter] = {}
        for severity in ("page", "warn"):
            for window_s in windows[severity]:
                label = _window_label(window_s)
                self.counters.setdefault(label, WindowCounter(window_s))

    # -- feeding --------------------------------------------------------
    def _matches(self, endpoint: str) -> bool:
        return self.endpoint in ("*", endpoint)

    def observe(
        self, now: float, endpoint: str, outcome: str, seconds: float
    ) -> None:
        if self.type == "hit_rate" or not self._matches(endpoint):
            return
        if self.type == "availability":
            bad = outcome in _FAILED_OUTCOMES
        elif self.type == "shed_rate":
            bad = outcome in _SHED_OUTCOMES
        else:  # latency: refusals carry no service latency
            if outcome in _SHED_OUTCOMES:
                return
            bad = seconds > self.threshold_s
        for counter in self.counters.values():
            counter.add(now, good=0 if bad else 1, bad=1 if bad else 0)

    def observe_tier_delta(self, now: float, hits: int, misses: int) -> None:
        for counter in self.counters.values():
            counter.add(now, good=hits, bad=misses)

    # -- evaluation -----------------------------------------------------
    def window_rows(self, now: float) -> dict[str, dict]:
        rows: dict[str, dict] = {}
        for label, counter in self.counters.items():
            good, bad = counter.totals(now)
            total = good + bad
            burn = (bad / total) / self.budget if total else 0.0
            rows[label] = {
                "bad": bad,
                "total": total,
                "bad_fraction": bad / total if total else None,
                "burn_rate": round(burn, 4),
            }
        return rows

    @staticmethod
    def _firing(
        rows: dict[str, dict], windows: list[float], threshold: float
    ) -> bool:
        labels = [_window_label(w) for w in windows]
        return all(
            rows[label]["total"] > 0 and rows[label]["burn_rate"] >= threshold
            for label in labels
        )


class SloEngine:
    """All objectives of one server, fed inline, evaluated on read."""

    def __init__(
        self,
        config: dict | None = None,
        now_fn=time.monotonic,
    ) -> None:
        self.config = _validate_config(config or DEFAULT_SLO_CONFIG)
        self._now = now_fn
        self._lock = threading.Lock()
        self.windows: dict[str, list[float]] = self.config["windows"]
        self.burn_thresholds: dict[str, float] = self.config["burn"]
        self.objectives = [
            _Objective(spec, self.windows)
            for spec in self.config["objectives"]
        ]
        self._tier_objectives = [
            obj for obj in self.objectives if obj.type == "hit_rate"
        ]
        self._tier_source = None
        self._tier_last: dict[str, tuple[int, int]] = {}
        self._tier_sampled_at: float | None = None
        # Sample tier ledgers at ~10x the fastest window's slot width,
        # bounded to [50ms, 1s] — cheap, and fresh enough for any
        # configured window.
        fastest = min(w for ws in self.windows.values() for w in ws)
        self._tier_sample_interval = min(1.0, max(0.05, fastest / 600.0))

    # -- feeding --------------------------------------------------------
    def set_tier_source(self, source) -> None:
        """Install a callable returning ``{tier: {"hits", "misses"}}``
        cumulative ledgers (sampled rate-limited; deltas feed the
        hit-rate objectives)."""
        self._tier_source = source

    def observe(self, endpoint: str, outcome: str, seconds: float) -> None:
        """Feed one finished request."""
        now = self._now()
        with self._lock:
            for obj in self.objectives:
                obj.observe(now, endpoint, outcome, seconds)
            self._sample_tiers_locked(now)

    def _sample_tiers_locked(self, now: float) -> None:
        if self._tier_source is None or not self._tier_objectives:
            return
        if (
            self._tier_sampled_at is not None
            and now - self._tier_sampled_at < self._tier_sample_interval
        ):
            return
        self._tier_sampled_at = now
        try:
            ledgers = self._tier_source()
        except Exception:
            return  # advisory sampling must never fail a request
        for obj in self._tier_objectives:
            row = ledgers.get(obj.tier)
            if row is None:
                continue
            hits, misses = int(row.get("hits", 0)), int(row.get("misses", 0))
            last_hits, last_misses = self._tier_last.get(obj.tier, (0, 0))
            self._tier_last[obj.tier] = (hits, misses)
            delta_h = max(0, hits - last_hits)
            delta_m = max(0, misses - last_misses)
            if delta_h or delta_m:
                obj.observe_tier_delta(now, delta_h, delta_m)

    # -- evaluation -----------------------------------------------------
    def _evaluate_locked(self, now: float) -> list[dict]:
        self._sample_tiers_locked(now)
        out = []
        for obj in self.objectives:
            rows = obj.window_rows(now)
            state = "ok"
            if obj._firing(
                rows,
                self.windows["warn"],
                obj.burn_override.get("warn", self.burn_thresholds["warn"]),
            ):
                state = "warn"
            if obj._firing(
                rows,
                self.windows["page"],
                obj.burn_override.get("page", self.burn_thresholds["page"]),
            ):
                state = "page"
            out.append(
                {
                    "name": obj.name,
                    "type": obj.type,
                    **{
                        key: obj.spec[key]
                        for key in (
                            "target", "quantile", "threshold_ms",
                            "tier", "floor", "ceiling", "endpoint",
                        )
                        if key in obj.spec
                    },
                    "budget": round(obj.budget, 6),
                    "windows": rows,
                    "state": state,
                }
            )
        return out

    def snapshot(self) -> dict:
        """The ``/slo`` document."""
        with self._lock:
            objectives = self._evaluate_locked(self._now())
        alerts = _alerts_of(objectives)
        return {
            "enabled": True,
            "burn_thresholds": dict(self.burn_thresholds),
            "windows": {
                severity: [_window_label(w) for w in windows]
                for severity, windows in self.windows.items()
            },
            "objectives": objectives,
            "alerts": alerts,
        }

    def alerts(self) -> list[dict]:
        """Currently firing alerts (the ``/healthz`` shape)."""
        with self._lock:
            objectives = self._evaluate_locked(self._now())
        return _alerts_of(objectives)

    def metrics_rows(self) -> dict:
        """Compact per-objective burn gauges for ``/metrics``."""
        with self._lock:
            objectives = self._evaluate_locked(self._now())
        return {
            obj["name"]: {
                "state": obj["state"],
                "budget": obj["budget"],
                "burn": {
                    label: row["burn_rate"]
                    for label, row in obj["windows"].items()
                },
            }
            for obj in objectives
        }


def _alerts_of(objectives: list[dict]) -> list[dict]:
    alerts = []
    for obj in objectives:
        if obj["state"] == "ok":
            continue
        severity = obj["state"]
        alerts.append(
            {
                "objective": obj["name"],
                "type": obj["type"],
                "severity": severity,
                "burn_rates": {
                    label: row["burn_rate"]
                    for label, row in obj["windows"].items()
                },
            }
        )
    return alerts


# ----------------------------------------------------------------------
# Configuration loading
# ----------------------------------------------------------------------
_REQUIRED_BY_TYPE = {
    "availability": ("target",),
    "latency": ("quantile", "threshold_ms"),
    "hit_rate": ("tier", "floor"),
    "shed_rate": ("ceiling",),
}


def _validate_config(config: dict) -> dict:
    if not isinstance(config, dict):
        raise ValueError("SLO config must be a JSON object")
    merged = {
        "windows": {
            key: [float(w) for w in value]
            for key, value in {
                **DEFAULT_SLO_CONFIG["windows"],
                **config.get("windows", {}),
            }.items()
        },
        "burn": {
            key: float(value)
            for key, value in {
                **DEFAULT_SLO_CONFIG["burn"],
                **config.get("burn", {}),
            }.items()
        },
        "objectives": config.get(
            "objectives", DEFAULT_SLO_CONFIG["objectives"]
        ),
    }
    for severity in ("page", "warn"):
        windows = merged["windows"].get(severity)
        if (
            not isinstance(windows, list)
            or len(windows) != 2
            or any(w <= 0 for w in windows)
        ):
            raise ValueError(
                f"windows.{severity} must be two positive window lengths"
            )
        if merged["burn"].get(severity, 0) <= 0:
            raise ValueError(f"burn.{severity} must be positive")
    if not isinstance(merged["objectives"], list) or not merged["objectives"]:
        raise ValueError("objectives must be a non-empty list")
    seen = set()
    for spec in merged["objectives"]:
        if not isinstance(spec, dict):
            raise ValueError("each objective must be a JSON object")
        name, otype = spec.get("name"), spec.get("type")
        if not name or not isinstance(name, str):
            raise ValueError("every objective needs a string name")
        if name in seen:
            raise ValueError(f"duplicate objective name {name!r}")
        seen.add(name)
        if otype not in OBJECTIVE_TYPES:
            raise ValueError(
                f"objective {name!r}: type must be one of"
                f" {OBJECTIVE_TYPES}, got {otype!r}"
            )
        missing = [
            key for key in _REQUIRED_BY_TYPE[otype] if key not in spec
        ]
        if missing:
            raise ValueError(
                f"objective {name!r} ({otype}) missing {missing}"
            )
    return merged


def load_slo_config(source: str | None) -> dict:
    """Resolve ``--slo-config``: ``None`` → shipped defaults, a path →
    parsed file, inline JSON (starts with ``{``) → parsed directly.
    Raises ``ValueError`` with a loud message on anything malformed —
    a typo'd objective must fail startup, not alert on nothing."""
    if source is None:
        return _validate_config(DEFAULT_SLO_CONFIG)
    text = source.strip()
    if not text.startswith("{"):
        if not os.path.exists(source):
            raise ValueError(f"SLO config file not found: {source!r}")
        with open(source) as fh:
            text = fh.read()
    try:
        parsed = json.loads(text)
    except ValueError as exc:
        raise ValueError(f"SLO config is not valid JSON: {exc}") from None
    return _validate_config(parsed)

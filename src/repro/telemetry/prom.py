"""Prometheus text exposition (and a tiny checker for CI).

:func:`render_prometheus` turns a ``/metrics`` JSON snapshot — a
service's or the fabric router's aggregate pseudo-snapshot — into the
Prometheus text format (version 0.0.4): ``# HELP``/``# TYPE`` headers,
``family{label="value"} number`` samples, histogram families with
cumulative ``le`` buckets plus ``_sum``/``_count``.  Rendering is a pure
read of the snapshot dict; anything the snapshot does not carry is
simply not emitted.  In particular a tier with ``hit_rate: None`` (never
touched) emits **no** ``repro_tier_hit_rate`` sample rather than a fake
``0`` — absence is the honest exposition of "no data".

:func:`parse_prometheus` is the ~20-line inverse used by CI's smoke
jobs: it validates the line grammar strictly enough to catch a broken
renderer (malformed labels, non-numeric values, samples for undeclared
families) and returns per-family sample counts for assertions.  It is
not a full client — just enough parser to keep the exposition honest
without adding a dependency.
"""

from __future__ import annotations

import math
import re

from repro.telemetry.histogram import LatencyHistogram

__all__ = ["render_prometheus", "parse_prometheus"]

CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


def _escape(value: object) -> str:
    """Escape a label value per the exposition format."""
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _fmt(value: float) -> str:
    if value != value:  # NaN
        return "NaN"
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int) or float(value).is_integer():
        return str(int(value))
    return repr(float(value))


class _Writer:
    """Accumulates one family at a time: header once, then samples."""

    def __init__(self) -> None:
        self.lines: list[str] = []

    def family(self, name: str, kind: str, help_text: str) -> None:
        self.lines.append(f"# HELP {name} {help_text}")
        self.lines.append(f"# TYPE {name} {kind}")

    def sample(
        self, name: str, labels: dict | None, value: float
    ) -> None:
        if labels:
            body = ",".join(
                f'{key}="{_escape(val)}"' for key, val in labels.items()
            )
            self.lines.append(f"{name}{{{body}}} {_fmt(value)}")
        else:
            self.lines.append(f"{name} {_fmt(value)}")

    def text(self) -> str:
        return "\n".join(self.lines) + "\n"


def render_prometheus(snapshot: dict) -> str:
    """Render a ``/metrics`` JSON snapshot as Prometheus text.

    Works on both a single service snapshot and the fabric router's
    aggregate (missing sections are skipped, never faked).
    """
    out = _Writer()

    # -- request counters ----------------------------------------------
    endpoints = snapshot.get("endpoints") or {}
    if endpoints:
        out.family(
            "repro_requests_total", "counter",
            "Requests by endpoint and outcome.",
        )
        for path in sorted(endpoints):
            row = endpoints[path] or {}
            for outcome in sorted(row.get("outcomes") or {}):
                out.sample(
                    "repro_requests_total",
                    {"endpoint": path, "outcome": outcome},
                    row["outcomes"][outcome],
                )

    # -- latency histograms --------------------------------------------
    hist_rows = [
        (path, (endpoints[path] or {}).get("latency_histogram"))
        for path in sorted(endpoints)
    ]
    hist_rows = [(path, h) for path, h in hist_rows if h]
    if hist_rows:
        out.family(
            "repro_request_latency_seconds", "histogram",
            "Request latency (fixed log-bucket layout, mergeable).",
        )
        for path, data in hist_rows:
            try:
                hist = LatencyHistogram.from_dict(data)
            except (ValueError, TypeError):
                continue
            cumulative = 0
            for index, n in hist.nonzero():
                cumulative += n
                out.sample(
                    "repro_request_latency_seconds_bucket",
                    {"endpoint": path,
                     "le": _fmt(hist.bucket_upper_s(index))},
                    cumulative,
                )
            out.sample(
                "repro_request_latency_seconds_bucket",
                {"endpoint": path, "le": "+Inf"},
                hist.count,
            )
            out.sample(
                "repro_request_latency_seconds_sum",
                {"endpoint": path}, hist.sum_s,
            )
            out.sample(
                "repro_request_latency_seconds_count",
                {"endpoint": path}, hist.count,
            )

    # -- tier ledgers ---------------------------------------------------
    tiers = snapshot.get("tiers") or {}
    for field in ("hits", "misses", "puts", "evictions"):
        rows = {
            name: row[field]
            for name, row in sorted(tiers.items())
            if isinstance(row, dict) and field in row
        }
        if not rows:
            continue
        out.family(
            f"repro_tier_{field}_total", "counter",
            f"Cache tier {field}.",
        )
        for name, value in rows.items():
            out.sample(
                f"repro_tier_{field}_total", {"tier": name}, value
            )
    sizes = {
        name: row["size"]
        for name, row in sorted(tiers.items())
        if isinstance(row, dict) and row.get("size") is not None
    }
    if sizes:
        out.family(
            "repro_tier_size", "gauge", "Entries held per cache tier."
        )
        for name, value in sizes.items():
            out.sample("repro_tier_size", {"tier": name}, value)
    # hit_rate=None (tier never consulted) is omitted, not rendered as 0.
    rates = {
        name: row["hit_rate"]
        for name, row in sorted(tiers.items())
        if isinstance(row, dict) and row.get("hit_rate") is not None
    }
    if rates:
        out.family(
            "repro_tier_hit_rate", "gauge",
            "Cache tier hit rate (absent until the tier is consulted).",
        )
        for name, value in rates.items():
            out.sample("repro_tier_hit_rate", {"tier": name}, value)

    # -- predictor ------------------------------------------------------
    predictor = snapshot.get("predictor") or {}
    counts = {
        key: predictor[key]
        for key in ("lc_served", "sim_served", "lc_validation_mismatch")
        if isinstance(predictor.get(key), (int, float))
    }
    if counts:
        out.family(
            "repro_predictor_total", "counter",
            "Traffic-prediction path serve counts.",
        )
        for key, value in sorted(counts.items()):
            out.sample("repro_predictor_total", {"path": key}, value)

    # -- stage seconds --------------------------------------------------
    stages = snapshot.get("stages") or {}
    rows = {
        name: row
        for name, row in sorted(stages.items())
        if isinstance(row, dict)
    }
    if rows:
        out.family(
            "repro_stage_seconds_total", "counter",
            "Cumulative traced seconds per pipeline stage.",
        )
        for name, row in rows.items():
            value = row.get("total_s", row.get("seconds"))
            if isinstance(value, (int, float)):
                out.sample(
                    "repro_stage_seconds_total", {"stage": name}, value
                )

    # -- queue + server gauges -----------------------------------------
    queue = snapshot.get("queue") or {}
    gauges = [
        ("repro_queue_depth", "In-flight jobs.", queue.get("depth")),
        ("repro_queue_shed_total", "Jobs refused at admission.",
         queue.get("shed")),
        ("repro_uptime_seconds", "Seconds since process start.",
         snapshot.get("uptime_s")),
    ]
    draining = snapshot.get("draining")
    if draining is not None:
        gauges.append(
            ("repro_draining", "1 while draining for shutdown.",
             1 if draining else 0)
        )
    for name, help_text, value in gauges:
        if isinstance(value, (int, float)):
            out.family(name, "gauge", help_text)
            out.sample(name, None, value)
    classes = snapshot.get("queues") or {}
    depth_rows = {
        name: row.get("depth")
        for name, row in sorted(classes.items())
        if isinstance(row, dict)
        and isinstance(row.get("depth"), (int, float))
    }
    if depth_rows:
        out.family(
            "repro_class_queue_depth", "gauge",
            "In-flight jobs per cost class.",
        )
        for name, value in depth_rows.items():
            out.sample("repro_class_queue_depth", {"class": name}, value)
    # Adaptive limits appear only under --adaptive-limits (the rows
    # carry the key only then) — absent, not faked to the static limit.
    adaptive_rows = {
        name: row.get("adaptive_limit")
        for name, row in sorted(classes.items())
        if isinstance(row, dict)
        and isinstance(row.get("adaptive_limit"), (int, float))
    }
    if adaptive_rows:
        out.family(
            "repro_class_adaptive_limit", "gauge",
            "AIMD admission limit in force per cost class.",
        )
        for name, value in adaptive_rows.items():
            out.sample("repro_class_adaptive_limit", {"class": name}, value)

    # -- overload control ----------------------------------------------
    overload = snapshot.get("overload") or {}
    overload_classes = overload.get("classes") or {}
    for field, help_text in (
        ("admitted", "Fresh jobs admitted per cost class."),
        ("executed", "Admitted jobs that reached a worker."),
        ("swept", "Admitted jobs dropped at dequeue: deadline expired"
         " while queued."),
    ):
        rows = {
            name: row.get(field)
            for name, row in sorted(overload_classes.items())
            if isinstance(row, dict)
            and isinstance(row.get(field), (int, float))
        }
        if not rows:
            continue
        out.family(
            f"repro_class_{field}_total", "counter", help_text
        )
        for name, value in rows.items():
            out.sample(
                f"repro_class_{field}_total", {"class": name}, value
            )
    brownout = overload.get("brownout") or {}
    if isinstance(brownout.get("stage"), (int, float)):
        out.family(
            "repro_brownout_stage", "gauge",
            "Brownout ladder stage (0 normal .. 4 full shed).",
        )
        out.sample("repro_brownout_stage", None, brownout["stage"])

    # -- SLO burn gauges ------------------------------------------------
    slo = snapshot.get("slo") or {}
    if slo:
        out.family(
            "repro_slo_burn_rate", "gauge",
            "Error-budget burn rate per objective and window"
            " (1.0 = exactly on target).",
        )
        for objective in sorted(slo):
            row = slo[objective] or {}
            for window, burn in sorted((row.get("burn") or {}).items()):
                out.sample(
                    "repro_slo_burn_rate",
                    {"objective": objective, "window": window},
                    burn,
                )
        out.family(
            "repro_slo_alert", "gauge",
            "Alert state per objective (0 ok, 1 warn, 2 page).",
        )
        severity = {"ok": 0, "warn": 1, "page": 2}
        for objective in sorted(slo):
            out.sample(
                "repro_slo_alert",
                {"objective": objective},
                severity.get((slo[objective] or {}).get("state"), 0),
            )

    return out.text()


_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r" (?P<value>[^ ]+)$"
)
_LABEL_RE = re.compile(
    r'^[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*"$'
)


def parse_prometheus(text: str) -> dict[str, int]:
    """Strictly check exposition text; return samples-per-family.

    Raises ``ValueError`` on any malformed line, bad label pair,
    non-numeric value, or sample whose family was never declared with
    ``# TYPE``.  Histogram series (``_bucket``/``_sum``/``_count``)
    count toward their base family.
    """
    declared: set[str] = set()
    counts: dict[str, int] = {}
    for lineno, line in enumerate(text.splitlines(), 1):
        if not line.strip():
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) < 3 or parts[1] not in ("HELP", "TYPE"):
                raise ValueError(f"line {lineno}: bad comment {line!r}")
            if parts[1] == "TYPE":
                declared.add(parts[2])
            continue
        match = _SAMPLE_RE.match(line)
        if not match:
            raise ValueError(f"line {lineno}: bad sample {line!r}")
        name = match.group("name")
        labels = match.group("labels")
        if labels:
            for pair in re.split(r",(?=[a-zA-Z_])", labels):
                if not _LABEL_RE.match(pair):
                    raise ValueError(
                        f"line {lineno}: bad label pair {pair!r}"
                    )
        value = match.group("value")
        if value not in ("+Inf", "-Inf", "NaN"):
            try:
                float(value)
            except ValueError:
                raise ValueError(
                    f"line {lineno}: bad value {value!r}"
                ) from None
        family = re.sub(r"_(bucket|sum|count)$", "", name)
        if name not in declared and family not in declared:
            raise ValueError(
                f"line {lineno}: sample for undeclared family {name!r}"
            )
        counts[family] = counts.get(family, 0) + 1
    return counts

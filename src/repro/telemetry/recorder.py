"""The request flight recorder: a bounded ring of request records.

Latency percentiles and burn rates say *that* something regressed; the
flight recorder says *which requests did it*.  Every finished request
appends one structured record (endpoint, outcome, HTTP status, shard,
latency, serving tier walk, queue class, per-stage milliseconds — span
aggregates included when the request ran traced) into a fixed-capacity
ring; ``GET /debug/requests?n=K`` and ``repro obs tail`` read it back
newest-first with optional filters, so a p99 spike or a burning SLO can
be attributed without re-running load.

Recording is O(1) under one lock (a deque append plus two counter
bumps) and loses nothing the metrics layer keeps: the ring is bounded
evidence, not accounting — ``dropped`` says how much history scrolled
off.
"""

from __future__ import annotations

import threading
import time
from collections import deque

__all__ = ["FlightRecorder"]


class FlightRecorder:
    """Fixed-capacity ring of per-request records (thread-safe)."""

    def __init__(self, capacity: int = 256) -> None:
        if capacity < 0:
            raise ValueError("capacity must be >= 0")
        self.capacity = capacity
        self._ring: deque[dict] = deque(maxlen=capacity)
        self._lock = threading.Lock()
        self._seq = 0
        self.recorded = 0

    def record(self, **fields: object) -> None:
        """Append one request record (stamped with ``seq`` + ``ts``)."""
        if self.capacity == 0:
            return
        entry = {"seq": 0, "ts": time.time(), **fields}
        with self._lock:
            self._seq += 1
            entry["seq"] = self._seq
            self._ring.append(entry)
            self.recorded += 1

    def tail(
        self,
        n: int = 50,
        endpoint: str | None = None,
        outcome: str | None = None,
        min_latency_ms: float | None = None,
    ) -> list[dict]:
        """The newest ``n`` records matching the filters, newest first."""
        with self._lock:
            records = list(self._ring)
        records.reverse()
        out: list[dict] = []
        for entry in records:
            if endpoint is not None and entry.get("endpoint") != endpoint:
                continue
            if outcome is not None and entry.get("outcome") != outcome:
                continue
            if min_latency_ms is not None:
                latency = entry.get("latency_ms")
                if not isinstance(latency, (int, float)):
                    continue
                if latency < min_latency_ms:
                    continue
            out.append(dict(entry))
            if len(out) >= n:
                break
        return out

    def snapshot(self) -> dict:
        """Ring bookkeeping for ``/debug/requests`` envelopes."""
        with self._lock:
            held = len(self._ring)
            recorded = self.recorded
        return {
            "capacity": self.capacity,
            "held": held,
            "recorded": recorded,
            "dropped": recorded - held,
        }

"""Structured observability: nested spans with wall-time attribution.

One :class:`Trace` records a tree of :class:`Span` objects.  Layers
instrument themselves with the module-level :func:`span` context
manager::

    with obs.span("cachesim.sweep") as sp:
        sp.add(memo_hits=1)          # numeric counters accumulate
        sp.set(engine="vector")      # string attributes annotate
        ...

When no trace is active (the common case) ``span()`` returns a shared
no-op handle after a single context-variable read — the hot layers pay
essentially nothing.  A trace is activated either explicitly
(:func:`start_trace` / ``Trace.finish``) or ambiently by setting the
``REPRO_TRACE`` environment variable before the process starts (the
flag is read once at import), in which case the outermost span
roots a throwaway trace whose finished tree is kept in
:data:`last_trace` (the CI smoke runs the tier-1 suite this way to
prove the instrumented paths behave identically with tracing on).

The JSON form (``Span.to_dict``) aggregates same-named siblings — a
block-selection loop calling the ECM model hundreds of times collapses
to one ``ecm.predict`` entry with a ``count`` — so traces stay small
enough to embed in service responses.  The schema is::

    {"name": str, "count": int, "start_s": float, "duration_s": float,
     "self_s": float, "counters": {str: number}, "attrs": {str: str},
     "children": [<same>]}

``start_s`` is the offset of the (first) span entry from the trace
root; ``self_s`` is the wall time not covered by child spans.
"""

from __future__ import annotations

import os
import time
from contextvars import ContextVar
from dataclasses import dataclass, field

__all__ = [
    "ENV_FLAG",
    "Span",
    "Trace",
    "span",
    "start_trace",
    "current_trace",
    "current_span",
    "tracing_active",
    "render_trace",
    "coverage",
    "fold_stage_seconds",
    "last_trace",
]

#: Environment variable that turns ambient tracing on for the process.
ENV_FLAG = "REPRO_TRACE"


@dataclass
class Span:
    """One timed region; ``children`` are the regions nested inside it."""

    name: str
    start_s: float = 0.0
    duration_s: float = 0.0
    counters: dict = field(default_factory=dict)
    attrs: dict = field(default_factory=dict)
    children: list = field(default_factory=list)

    def add(self, **counters: float) -> None:
        """Accumulate numeric counters onto this span."""
        for key, value in counters.items():
            self.counters[key] = self.counters.get(key, 0) + value

    def set(self, **attrs: str) -> None:
        """Attach string attributes to this span."""
        self.attrs.update(attrs)

    def child_seconds(self) -> float:
        """Wall time covered by direct children."""
        return sum(c.duration_s for c in self.children)

    def self_seconds(self) -> float:
        """Wall time not attributed to any child span."""
        return max(0.0, self.duration_s - self.child_seconds())

    def walk(self):
        """Yield this span and every descendant, depth first."""
        yield self
        for child in self.children:
            yield from child.walk()

    def to_dict(self, aggregate: bool = True) -> dict:
        """JSON-ready form; ``aggregate`` merges same-named siblings."""
        return _span_dict([self], aggregate)


def _span_dict(group: list[Span], aggregate: bool) -> dict:
    """Serialize ``group`` (same-named spans) as one schema entry."""
    first = group[0]
    counters: dict = {}
    attrs: dict = {}
    children: list[Span] = []
    duration = 0.0
    for sp in group:
        duration += sp.duration_s
        children.extend(sp.children)
        for key, value in sp.counters.items():
            counters[key] = counters.get(key, 0) + value
        for key, value in sp.attrs.items():
            attrs.setdefault(key, value)
    child_total = sum(c.duration_s for c in children)
    if aggregate:
        groups: dict[str, list[Span]] = {}
        for child in children:
            groups.setdefault(child.name, []).append(child)
        child_dicts = [_span_dict(g, aggregate) for g in groups.values()]
    else:
        child_dicts = [_span_dict([c], aggregate) for c in children]
    return {
        "name": first.name,
        "count": len(group),
        "start_s": first.start_s,
        "duration_s": duration,
        "self_s": max(0.0, duration - child_total),
        "counters": counters,
        "attrs": attrs,
        "children": child_dicts,
    }


def fold_stage_seconds(entry: dict, stages: dict[str, float]) -> None:
    """Accumulate a serialized span tree's per-name durations into
    ``stages``.

    The root entry itself is skipped — callers already account its wall
    time under their own stage (the service's ``execute``); descendants
    land under their span names, so consumers aggregate e.g.
    ``ecm.predict`` seconds across traced requests.
    """
    for child in entry.get("children", ()):
        stages[child["name"]] = (
            stages.get(child["name"], 0.0) + child["duration_s"]
        )
        fold_stage_seconds(child, stages)


def coverage(root: Span) -> float:
    """Fraction of the root's wall time attributed to child spans."""
    if root.duration_s <= 0:
        return 1.0 if not root.children else 0.0
    return min(1.0, root.child_seconds() / root.duration_s)


class _NullHandle:
    """Shared do-nothing handle returned when tracing is off."""

    __slots__ = ()

    def __enter__(self) -> "_NullHandle":
        return self

    def __exit__(self, *exc: object) -> bool:
        return False

    def add(self, **counters: float) -> None:
        pass

    def set(self, **attrs: str) -> None:
        pass


_NULL_HANDLE = _NullHandle()


class _Handle:
    """Context manager entering/leaving one span of a live trace."""

    __slots__ = ("_trace", "span", "_t0")

    def __init__(self, trace: "Trace", name: str):
        self._trace = trace
        self._t0 = time.perf_counter()
        self.span = Span(name, start_s=self._t0 - trace.t0)

    def __enter__(self) -> Span:
        stack = self._trace._stack
        stack[-1].children.append(self.span)
        stack.append(self.span)
        return self.span

    def __exit__(self, *exc: object) -> bool:
        self.span.duration_s = time.perf_counter() - self._t0
        self._trace._stack.pop()
        return False

    # Convenience so ``span(...)`` can be used without ``as``:
    def add(self, **counters: float) -> None:
        self.span.add(**counters)

    def set(self, **attrs: str) -> None:
        self.span.set(**attrs)


class _RootHandle:
    """Handle for an ambient (``REPRO_TRACE``) trace rooted at one span."""

    __slots__ = ("_trace",)

    def __init__(self, trace: "Trace"):
        self._trace = trace

    def __enter__(self) -> Span:
        return self._trace.root

    def __exit__(self, *exc: object) -> bool:
        self._trace.finish()
        return False

    def add(self, **counters: float) -> None:
        self._trace.root.add(**counters)

    def set(self, **attrs: str) -> None:
        self._trace.root.set(**attrs)


class Trace:
    """One in-progress span tree.

    ``finish()`` closes the root, deactivates the trace and returns the
    root :class:`Span`.
    """

    def __init__(self, name: str, activate: bool = True) -> None:
        self.t0 = time.perf_counter()
        self.root = Span(name)
        self._stack: list[Span] = [self.root]
        self._token = _ACTIVE.set(self) if activate else None
        self._finished = False

    def enter(self, name: str) -> _Handle:
        """Open a child span under the innermost open span."""
        return _Handle(self, name)

    def finish(self) -> Span:
        """Close the root span and deactivate the trace."""
        if not self._finished:
            self._finished = True
            self.root.duration_s = time.perf_counter() - self.t0
            if self._token is not None:
                _ACTIVE.reset(self._token)
                self._token = None
            global last_trace
            last_trace = self.root
        return self.root


_ACTIVE: ContextVar[Trace | None] = ContextVar("repro_obs_trace", default=None)

#: Root span of the most recently finished trace in this context
#: (set by ``Trace.finish``; handy for the ambient ``REPRO_TRACE`` mode).
last_trace: Span | None = None


def _env_enabled() -> bool:
    return os.environ.get(ENV_FLAG, "") not in ("", "0")


#: Ambient-tracing switch, read once at import — ``os.environ`` lookups
#: cost ~1µs each, which would dominate the disabled-span fast path.
#: Export ``REPRO_TRACE=1`` before starting the process (tests flip
#: this attribute directly via monkeypatch).
_AMBIENT = _env_enabled()


def tracing_active() -> bool:
    """Whether a trace is currently recording in this context."""
    return _ACTIVE.get() is not None


def current_trace() -> Trace | None:
    """The trace recording in this context, if any."""
    return _ACTIVE.get()


def current_span() -> Span | None:
    """The innermost open span of the active trace, if any.

    Lets out-of-band layers (e.g. :mod:`repro.faults`) attach counters
    to whatever region happens to be recording without opening a span
    of their own.
    """
    trace = _ACTIVE.get()
    if trace is None:
        return None
    return trace._stack[-1]


def start_trace(name: str) -> Trace:
    """Begin recording; pair with ``trace.finish()``."""
    return Trace(name)


def span(name: str, _get=_ACTIVE.get):
    """Context manager timing one region of the active trace.

    No-op (one context-variable read and one global check, well under
    100ns) when no trace is active and ``REPRO_TRACE`` was unset at
    import.  With ``REPRO_TRACE`` set, an outermost span roots a
    throwaway ambient trace so every instrumented path runs its
    "tracing on" branch; the finished tree lands in :data:`last_trace`.
    """
    trace = _get()
    if trace is None:
        if not _AMBIENT:
            return _NULL_HANDLE
        return _RootHandle(Trace(name))
    return trace.enter(name)


# ----------------------------------------------------------------------
# Rendering
# ----------------------------------------------------------------------
def _fmt_ms(seconds: float) -> str:
    return f"{seconds * 1e3:9.3f}ms"


def _entry_label(entry: dict) -> str:
    label = entry["name"]
    if entry["count"] > 1:
        label += f" ×{entry['count']}"
    if entry["counters"]:
        label += "  " + " ".join(
            f"{k}={v:g}" for k, v in sorted(entry["counters"].items())
        )
    if entry["attrs"]:
        label += "  " + " ".join(
            f"{k}={v}" for k, v in sorted(entry["attrs"].items())
        )
    return label


def _render_children(entry: dict, prefix: str, lines: list[str]) -> None:
    children = entry["children"]
    for i, child in enumerate(children):
        last = i == len(children) - 1
        connector = "└─ " if last else "├─ "
        lines.append(
            f"{_fmt_ms(child['duration_s'])}  {prefix}{connector}"
            f"{_entry_label(child)}"
        )
        _render_children(child, prefix + ("   " if last else "│  "), lines)


def render_trace(root: Span) -> str:
    """Human-readable span tree (durations, counters, attributes)."""
    entry = root.to_dict(aggregate=True)
    lines = [f"{_fmt_ms(entry['duration_s'])}  {_entry_label(entry)}"]
    _render_children(entry, "", lines)
    return "\n".join(lines)

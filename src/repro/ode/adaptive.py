"""Adaptive step-size control with embedded Runge-Kutta pairs.

Offsite tunes fixed-step kernels, but production explicit ODE solving
uses embedded pairs; this module adds that layer (a natural extension
of the paper's scope): Bogacki-Shampine 3(2) and Dormand-Prince 5(4)
pairs with a standard PI step-size controller.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.ode.ivp import IVP

RhsFunc = Callable[[float, np.ndarray], np.ndarray]


@dataclass(frozen=True)
class EmbeddedPair:
    """An embedded RK pair ``(A, b_high, b_low, c)``."""

    name: str
    a: np.ndarray
    b_high: np.ndarray
    b_low: np.ndarray
    c: np.ndarray
    order: int  # of the propagating (high) solution
    fsal: bool = False  # first-same-as-last stage reuse

    @property
    def stages(self) -> int:
        """Number of stages."""
        return len(self.c)


def bs32() -> EmbeddedPair:
    """Bogacki-Shampine 3(2) pair (the `ode23` pair)."""
    a = np.zeros((4, 4))
    a[1, 0] = 0.5
    a[2, 1] = 0.75
    a[3, :3] = [2 / 9, 1 / 3, 4 / 9]
    return EmbeddedPair(
        name="BS3(2)",
        a=a,
        b_high=np.array([2 / 9, 1 / 3, 4 / 9, 0.0]),
        b_low=np.array([7 / 24, 1 / 4, 1 / 3, 1 / 8]),
        c=np.array([0.0, 0.5, 0.75, 1.0]),
        order=3,
        fsal=True,
    )


def dp54() -> EmbeddedPair:
    """Dormand-Prince 5(4) pair (the `ode45` pair)."""
    a = np.zeros((7, 7))
    a[1, 0] = 1 / 5
    a[2, :2] = [3 / 40, 9 / 40]
    a[3, :3] = [44 / 45, -56 / 15, 32 / 9]
    a[4, :4] = [19372 / 6561, -25360 / 2187, 64448 / 6561, -212 / 729]
    a[5, :5] = [9017 / 3168, -355 / 33, 46732 / 5247, 49 / 176, -5103 / 18656]
    a[6, :6] = [35 / 384, 0.0, 500 / 1113, 125 / 192, -2187 / 6784, 11 / 84]
    b_high = np.array(
        [35 / 384, 0.0, 500 / 1113, 125 / 192, -2187 / 6784, 11 / 84, 0.0]
    )
    b_low = np.array(
        [
            5179 / 57600, 0.0, 7571 / 16695, 393 / 640,
            -92097 / 339200, 187 / 2100, 1 / 40,
        ]
    )
    c = np.array([0.0, 1 / 5, 3 / 10, 4 / 5, 8 / 9, 1.0, 1.0])
    return EmbeddedPair(
        name="DP5(4)", a=a, b_high=b_high, b_low=b_low, c=c, order=5,
        fsal=True,
    )


@dataclass
class AdaptiveResult:
    """Outcome of an adaptive integration."""

    t: float
    y: np.ndarray
    steps_accepted: int
    steps_rejected: int
    rhs_evals: int

    @property
    def steps_total(self) -> int:
        """Attempted steps."""
        return self.steps_accepted + self.steps_rejected


class AdaptiveRK:
    """Embedded-pair integrator with a PI step-size controller."""

    def __init__(
        self,
        pair: EmbeddedPair,
        rtol: float = 1e-6,
        atol: float = 1e-9,
        safety: float = 0.9,
        max_factor: float = 5.0,
        min_factor: float = 0.2,
    ) -> None:
        if rtol <= 0 or atol <= 0:
            raise ValueError("tolerances must be positive")
        self.pair = pair
        self.rtol = rtol
        self.atol = atol
        self.safety = safety
        self.max_factor = max_factor
        self.min_factor = min_factor

    @property
    def name(self) -> str:
        """Integrator name."""
        return f"Adaptive[{self.pair.name}]"

    def _attempt(
        self, f: RhsFunc, t: float, y: np.ndarray, h: float
    ) -> tuple[np.ndarray, float, int]:
        """One trial step; returns (y_high, error_norm, rhs_evals)."""
        pair = self.pair
        s = pair.stages
        k = np.empty((s,) + y.shape)
        for i in range(s):
            yi = y.copy()
            for j in range(i):
                if pair.a[i, j] != 0.0:
                    yi += h * pair.a[i, j] * k[j]
            k[i] = f(t + pair.c[i] * h, yi)
        y_high = y + h * np.tensordot(pair.b_high, k, axes=(0, 0))
        y_low = y + h * np.tensordot(pair.b_low, k, axes=(0, 0))
        scale = self.atol + self.rtol * np.maximum(np.abs(y), np.abs(y_high))
        err = np.sqrt(np.mean(((y_high - y_low) / scale) ** 2))
        return y_high, float(err), s

    def integrate(
        self,
        ivp: IVP,
        h0: float | None = None,
        max_steps: int = 100_000,
    ) -> AdaptiveResult:
        """Integrate ``ivp`` from ``t0`` to ``t_end`` adaptively."""
        t = ivp.t0
        y = ivp.y0.copy()
        h = h0 if h0 is not None else (ivp.t_end - ivp.t0) / 100.0
        accepted = 0
        rejected = 0
        evals = 0
        order = self.pair.order
        while t < ivp.t_end:
            h = min(h, ivp.t_end - t)
            if h <= 0:
                break
            y_new, err, n_evals = self._attempt(ivp.rhs, t, y, h)
            evals += n_evals
            if err <= 1.0:
                t += h
                y = y_new
                accepted += 1
                factor = self.safety * err ** (-1.0 / (order + 1)) if err > 0 \
                    else self.max_factor
            else:
                rejected += 1
                factor = self.safety * err ** (-1.0 / (order + 1))
            factor = min(self.max_factor, max(self.min_factor, factor))
            h *= factor
            if accepted + rejected > max_steps:
                raise RuntimeError(
                    f"{self.name}: exceeded {max_steps} attempted steps"
                )
        return AdaptiveResult(
            t=t, y=y, steps_accepted=accepted, steps_rejected=rejected,
            rhs_evals=evals,
        )

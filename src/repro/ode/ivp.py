"""Initial value problem library.

The stencil-coupled problems (Heat) are the ones Offsite hands to
YaskSite; the others (Wave1D, Cusp, InverterChain) exercise the ODE
machinery on the broader Offsite problem mix, including a deliberately
non-stencil case.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import prod
from typing import Callable

import numpy as np

from repro.stencil.builders import heat
from repro.stencil.spec import StencilSpec


@dataclass(frozen=True)
class IVP:
    """An initial value problem ``y' = f(t, y)``, ``y(t0) = y0``.

    ``stencil`` is set when the right-hand side is a stencil sweep over
    a structured grid (the YaskSite-tunable case); ``grid_shape`` then
    gives the interior extents and ``y`` is the flattened field.
    """

    name: str
    y0: np.ndarray
    rhs: Callable[[float, np.ndarray], np.ndarray]
    t0: float = 0.0
    t_end: float = 1.0
    exact: Callable[[float], np.ndarray] | None = None
    stencil: StencilSpec | None = None
    grid_shape: tuple[int, ...] | None = None

    @property
    def size(self) -> int:
        """System dimension."""
        return self.y0.size

    def error(self, t: float, y: np.ndarray) -> float:
        """Max-norm error against the exact solution (if known)."""
        if self.exact is None:
            raise ValueError(f"{self.name} has no exact solution")
        return float(np.max(np.abs(y - self.exact(t))))


# ----------------------------------------------------------------------
# Heat equation (stencil-coupled; the Offsite+YaskSite flagship case)
# ----------------------------------------------------------------------
def HeatND(
    dim: int,
    n: int,
    alpha: float = 1.0,
    t_end: float = 0.05,
) -> IVP:
    """Heat equation on the unit cube with homogeneous Dirichlet walls.

    Method of lines on an ``n^dim`` interior grid; the initial condition
    is the first sine eigenmode, so the exact solution is a pure
    exponential decay — ideal for convergence tests.
    """
    if dim < 1 or n < 2:
        raise ValueError("need dim >= 1 and n >= 2")
    dx = 1.0 / (n + 1)
    coords = [np.arange(1, n + 1) * dx for _ in range(dim)]
    mesh = np.meshgrid(*coords, indexing="ij")
    mode = np.ones((n,) * dim)
    for axis_coord in mesh:
        mode = mode * np.sin(np.pi * axis_coord)
    # Decay rate of the *semi-discrete* system: the sine mode is an
    # eigenvector of the discrete Laplacian with eigenvalue
    # -(4/dx^2) sin^2(pi dx / 2) per axis, so convergence tests measure
    # the time integrator, not the spatial discretisation error.
    lam_axis = -4.0 / dx**2 * np.sin(np.pi * dx / 2.0) ** 2
    decay = alpha * dim * lam_axis
    y0 = mode.ravel().copy()
    shape = (n,) * dim
    factor = alpha / dx**2

    def rhs(t: float, y: np.ndarray) -> np.ndarray:
        u = y.reshape(shape)
        lap = -2.0 * dim * u
        for axis in range(dim):
            up = np.zeros_like(u)
            down = np.zeros_like(u)
            sl_src_hi = [slice(None)] * dim
            sl_dst_hi = [slice(None)] * dim
            sl_src_hi[axis] = slice(1, None)
            sl_dst_hi[axis] = slice(0, -1)
            up[tuple(sl_dst_hi)] = u[tuple(sl_src_hi)]
            down[tuple(sl_src_hi)] = u[tuple(sl_dst_hi)]
            lap = lap + up + down
        return (factor * lap).ravel()

    def exact(t: float) -> np.ndarray:
        return (np.exp(decay * t) * mode).ravel()

    # The per-RHS stencil spec: u_new = u + a * laplacian, with the time
    # step folded into `a` later by the kernel generator; for RHS-only
    # sweeps the multiplier is alpha/dx^2.
    spec = heat(dim, name=f"heat{dim}d_rhs")
    return IVP(
        name=f"Heat{dim}D(n={n})",
        y0=y0,
        rhs=rhs,
        t_end=t_end,
        exact=exact,
        stencil=spec,
        grid_shape=shape,
    )


# ----------------------------------------------------------------------
# Wave equation as a first-order system
# ----------------------------------------------------------------------
def Wave1D(n: int, c: float = 1.0, t_end: float = 0.25) -> IVP:
    """1D wave equation, first-order form, Dirichlet walls.

    State is ``[u, v]`` stacked; the exact solution of the first sine
    mode is a cosine oscillation.
    """
    if n < 2:
        raise ValueError("need n >= 2")
    dx = 1.0 / (n + 1)
    x = np.arange(1, n + 1) * dx
    mode = np.sin(np.pi * x)
    # Eigenfrequency of the semi-discrete string (see HeatND).
    omega = 2.0 * c / dx * np.sin(np.pi * dx / 2.0)
    y0 = np.concatenate([mode, np.zeros(n)])
    factor = (c / dx) ** 2

    def rhs(t: float, y: np.ndarray) -> np.ndarray:
        u, v = y[:n], y[n:]
        lap = -2.0 * u
        lap[:-1] += u[1:]
        lap[1:] += u[:-1]
        return np.concatenate([v, factor * lap])

    def exact(t: float) -> np.ndarray:
        return np.concatenate(
            [np.cos(omega * t) * mode, -omega * np.sin(omega * t) * mode]
        )

    return IVP(name=f"Wave1D(n={n})", y0=y0, rhs=rhs, t_end=t_end, exact=exact)


# ----------------------------------------------------------------------
# Cusp: nonlinear reaction-diffusion ring (Hairer/Wanner; Offsite suite)
# ----------------------------------------------------------------------
def Cusp(n: int, sigma: float = 1.0 / 144.0, t_end: float = 0.01) -> IVP:
    """CUSP problem: three coupled fields on a diffusion ring.

    Nonlinear, stiff-ish, stencil-coupled with periodic topology — the
    structured-but-not-separable member of the Offsite problem mix.
    """
    if n < 3:
        raise ValueError("need n >= 3")
    eps = 1e-4
    d = sigma * n * n
    rng = np.random.default_rng(42)
    y0 = np.concatenate(
        [
            2.0 * np.sin(2 * np.pi * np.arange(n) / n),
            np.cos(2 * np.pi * np.arange(n) / n),
            0.1 * rng.standard_normal(n),
        ]
    )

    def rhs(t: float, state: np.ndarray) -> np.ndarray:
        y, a, b = state[:n], state[n : 2 * n], state[2 * n :]

        def ring_lap(u: np.ndarray) -> np.ndarray:
            return np.roll(u, 1) - 2.0 * u + np.roll(u, -1)

        u_term = (y - 0.7) * (y - 1.3)
        v = u_term / (u_term + 0.1)
        dy = -(y**3 + a * y + b) / eps + d * ring_lap(y)
        da = b + 0.07 * v + d * ring_lap(a)
        db = (1.0 - a * a) * b - a - 0.4 * y + 0.035 * v + d * ring_lap(b)
        return np.concatenate([dy, da, db])

    return IVP(name=f"Cusp(n={n})", y0=y0, rhs=rhs, t_end=t_end)


# ----------------------------------------------------------------------
# InverterChain: sequentially coupled, intentionally NOT a stencil
# ----------------------------------------------------------------------
def InverterChain(n: int, t_end: float = 1.0) -> IVP:
    """Chain of MOSFET inverters driven by a pulse (Offsite suite).

    Each node depends only on itself and its predecessor, so the
    coupling is a lower bidiagonal band — the contrast case where
    stencil machinery buys nothing.
    """
    if n < 2:
        raise ValueError("need n >= 2")
    u_op = 5.0
    u_t = 1.0
    gamma = 100.0
    y0 = np.zeros(n)
    y0[::2] = u_op

    def g(u: np.ndarray) -> np.ndarray:
        return np.maximum(u - u_t, 0.0) ** 2

    def u_in(t: float) -> float:
        # Trapezoidal input pulse.
        if t < 5.0:
            return t / 5.0 * u_op
        if t < 10.0:
            return u_op
        if t < 15.0:
            return (15.0 - t) / 5.0 * u_op
        return 0.0

    def rhs(t: float, y: np.ndarray) -> np.ndarray:
        prev = np.empty_like(y)
        prev[0] = u_in(t)
        prev[1:] = y[:-1]
        return u_op - y - gamma * g(prev)

    return IVP(name=f"InverterChain(n={n})", y0=y0, rhs=rhs, t_end=t_end)


def Brusselator2D(
    n: int, a: float = 1.0, b: float = 3.0, alpha: float = 0.02,
    t_end: float = 0.5,
) -> IVP:
    """2D Brusselator reaction-diffusion system (Hairer's BRUS2D).

    Two coupled fields on an n x n periodic grid; reaction plus
    diffusion, the classic nonlinear many-field member of the explicit
    ODE benchmark mix.
    """
    if n < 3:
        raise ValueError("need n >= 3")
    dx = 1.0 / n
    factor = alpha / dx**2
    xs = (np.arange(n) + 0.5) * dx
    xx, yy = np.meshgrid(xs, xs, indexing="ij")
    u0 = 22.0 * yy * (1.0 - yy) ** 1.5
    v0 = 27.0 * xx * (1.0 - xx) ** 1.5
    y0 = np.concatenate([u0.ravel(), v0.ravel()])

    def lap(f: np.ndarray) -> np.ndarray:
        return (
            np.roll(f, 1, 0) + np.roll(f, -1, 0)
            + np.roll(f, 1, 1) + np.roll(f, -1, 1) - 4.0 * f
        )

    def rhs(t: float, state: np.ndarray) -> np.ndarray:
        u = state[: n * n].reshape(n, n)
        v = state[n * n :].reshape(n, n)
        uv2 = u * u * v
        du = a + uv2 - (b + 1.0) * u + factor * lap(u)
        dv = b * u - uv2 + factor * lap(v)
        return np.concatenate([du.ravel(), dv.ravel()])

    return IVP(name=f"Brusselator2D(n={n})", y0=y0, rhs=rhs, t_end=t_end)


_IVPS: dict[str, Callable[..., IVP]] = {
    "heat1d": lambda n=64: HeatND(1, n),
    "heat2d": lambda n=32: HeatND(2, n),
    "heat3d": lambda n=16: HeatND(3, n),
    "wave1d": lambda n=64: Wave1D(n),
    "cusp": lambda n=32: Cusp(n),
    "inverterchain": lambda n=32: InverterChain(n),
    "brusselator2d": lambda n=16: Brusselator2D(n),
}


def get_ivp(name: str, **kwargs) -> IVP:
    """Instantiate a suite IVP by short name."""
    try:
        factory = _IVPS[name.lower()]
    except KeyError:
        raise KeyError(
            f"unknown IVP {name!r}; choose from {sorted(_IVPS)}"
        ) from None
    return factory(**kwargs)

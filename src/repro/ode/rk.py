"""Classic explicit Runge-Kutta stepping."""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.ode.tableau import Tableau

RhsFunc = Callable[[float, np.ndarray], np.ndarray]


class ExplicitRK:
    """Fixed-step explicit RK integrator for a strictly lower-triangular
    tableau."""

    def __init__(self, tableau: Tableau) -> None:
        if not tableau.explicit:
            raise ValueError(
                f"{tableau.name} is implicit; use PIRK to iterate it"
            )
        self.tableau = tableau

    @property
    def name(self) -> str:
        """Method name."""
        return self.tableau.name

    @property
    def order(self) -> int:
        """Classical convergence order."""
        return self.tableau.order

    def step(self, f: RhsFunc, t: float, y: np.ndarray, h: float) -> np.ndarray:
        """Advance ``y`` from ``t`` to ``t + h``."""
        tab = self.tableau
        s = tab.stages
        k = np.empty((s,) + y.shape, dtype=y.dtype)
        for i in range(s):
            yi = y.copy()
            for j in range(i):
                aij = tab.a[i, j]
                if aij != 0.0:
                    yi += h * aij * k[j]
            k[i] = f(t + tab.c[i] * h, yi)
        out = y.copy()
        for j in range(s):
            if tab.b[j] != 0.0:
                out += h * tab.b[j] * k[j]
        return out

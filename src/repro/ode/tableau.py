"""Butcher tableaux, including numerically derived collocation methods.

Classic explicit tableaux are given literally.  The implicit tableaux
that PIRK methods iterate — Radau IIA and Lobatto IIIC — are computed
from their quadrature nodes: nodes come from derivative roots of the
defining polynomials, the ``A`` matrices from moment conditions.  This
keeps high-order coefficients exact to machine precision without
transcribing tables, and the order conditions are unit-tested.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass(frozen=True)
class Tableau:
    """A Butcher tableau ``(A, b, c)`` with metadata."""

    name: str
    a: np.ndarray
    b: np.ndarray
    c: np.ndarray
    order: int
    explicit: bool = field(default=False)

    def __post_init__(self) -> None:
        s = self.stages
        if self.a.shape != (s, s) or self.b.shape != (s,) or self.c.shape != (s,):
            raise ValueError(f"{self.name}: inconsistent tableau shapes")
        if self.explicit and np.any(np.triu(self.a) != 0.0):
            raise ValueError(f"{self.name}: explicit tableau has upper entries")

    @property
    def stages(self) -> int:
        """Number of stages ``s``."""
        return len(self.b)

    def row_sums_consistent(self, tol: float = 1e-10) -> bool:
        """Check the standard consistency condition ``sum_j a_ij == c_i``."""
        return bool(np.allclose(self.a.sum(axis=1), self.c, atol=tol))

    def quadrature_order(self, max_k: int = 12) -> int:
        """Largest ``p`` with ``sum b_j c_j^(k-1) == 1/k`` for k = 1..p."""
        p = 0
        for k in range(1, max_k + 1):
            lhs = float(np.sum(self.b * self.c ** (k - 1)))
            if abs(lhs - 1.0 / k) > 1e-8:
                break
            p = k
        return p


# ----------------------------------------------------------------------
# Explicit methods (literal coefficients)
# ----------------------------------------------------------------------
def euler() -> Tableau:
    """Forward Euler (order 1)."""
    return Tableau(
        "Euler",
        np.zeros((1, 1)),
        np.array([1.0]),
        np.array([0.0]),
        order=1,
        explicit=True,
    )


def heun() -> Tableau:
    """Heun's method (order 2)."""
    a = np.array([[0.0, 0.0], [1.0, 0.0]])
    return Tableau(
        "Heun", a, np.array([0.5, 0.5]), np.array([0.0, 1.0]), order=2,
        explicit=True,
    )


def rk4() -> Tableau:
    """The classical 4th-order Runge-Kutta method."""
    a = np.zeros((4, 4))
    a[1, 0] = 0.5
    a[2, 1] = 0.5
    a[3, 2] = 1.0
    b = np.array([1.0, 2.0, 2.0, 1.0]) / 6.0
    c = np.array([0.0, 0.5, 0.5, 1.0])
    return Tableau("RK4", a, b, c, order=4, explicit=True)


def bogacki_shampine() -> Tableau:
    """Bogacki-Shampine 3(2) method's 3rd-order tableau."""
    a = np.zeros((4, 4))
    a[1, 0] = 0.5
    a[2, 1] = 0.75
    a[3, 0], a[3, 1], a[3, 2] = 2.0 / 9.0, 1.0 / 3.0, 4.0 / 9.0
    b = np.array([2.0 / 9.0, 1.0 / 3.0, 4.0 / 9.0, 0.0])
    c = np.array([0.0, 0.5, 0.75, 1.0])
    return Tableau("BS3", a, b, c, order=3, explicit=True)


# ----------------------------------------------------------------------
# Collocation / quadrature tableaux (derived numerically)
# ----------------------------------------------------------------------
def _poly_derivative_roots(zero_mult: int, one_mult: int, order: int) -> np.ndarray:
    """Sorted real roots of ``d^order/dx^order [x^zero_mult (x-1)^one_mult]``."""
    poly = np.polynomial.Polynomial.fromroots(
        [0.0] * zero_mult + [1.0] * one_mult
    )
    deriv = poly.deriv(order)
    roots = deriv.roots()
    real = np.sort(roots.real)
    # Clean tiny imaginary noise and clamp to [0, 1].
    return np.clip(real, 0.0, 1.0)


def _collocation_a(c: np.ndarray) -> np.ndarray:
    """Collocation matrix: ``sum_j a_ij c_j^k = c_i^(k+1)/(k+1)``."""
    s = len(c)
    # (A @ M)[i, k] = sum_j a_ij c_j^k with M[j, k] = c_j^k, so A = R M^-1.
    m = np.vander(c, s, increasing=True)
    rhs = np.array(
        [[ci ** (k + 1) / (k + 1) for k in range(s)] for ci in c]
    )
    return rhs @ np.linalg.inv(m)


def _quadrature_weights(c: np.ndarray) -> np.ndarray:
    """Weights with ``sum_j b_j c_j^k = 1/(k+1)`` for k = 0..s-1."""
    s = len(c)
    v = np.vander(c, s, increasing=True).T
    moments = np.array([1.0 / (k + 1) for k in range(s)])
    return np.linalg.solve(v, moments)


def radau_iia(s: int) -> Tableau:
    """Radau IIA with ``s`` stages (order ``2s - 1``), via collocation.

    Nodes are the roots of ``d^(s-1)/dx^(s-1) [x^(s-1) (x-1)^s]``,
    which include the right endpoint ``c_s = 1``.
    """
    if s < 1:
        raise ValueError("need at least one stage")
    if s == 1:
        return Tableau(
            "RadauIIA(1)",
            np.array([[1.0]]),
            np.array([1.0]),
            np.array([1.0]),
            order=1,
        )
    c = _poly_derivative_roots(s - 1, s, s - 1)
    a = _collocation_a(c)
    b = a[-1].copy()  # stiffly accurate: b == last row of A
    return Tableau(f"RadauIIA({2 * s - 1})", a, b, c, order=2 * s - 1)


def gauss_legendre(s: int) -> Tableau:
    """Gauss-Legendre collocation with ``s`` stages (order ``2s``).

    Nodes are the roots of the shifted Legendre polynomial — i.e. of
    ``d^s/dx^s [x^s (x-1)^s]``.
    """
    if s < 1:
        raise ValueError("need at least one stage")
    c = _poly_derivative_roots(s, s, s)
    a = _collocation_a(c)
    b = _quadrature_weights(c)
    return Tableau(f"Gauss({2 * s})", a, b, c, order=2 * s)


def radau_ia(s: int) -> Tableau:
    """Radau IA with ``s`` stages (order ``2s - 1``).

    Nodes include the *left* endpoint (roots of
    ``d^(s-1)/dx^(s-1) [x^s (x-1)^(s-1)]``); the matrix satisfies the
    ``D(s)`` simplifying conditions — the defining property of the IA
    family (it is not a collocation method).
    """
    if s < 1:
        raise ValueError("need at least one stage")
    if s == 1:
        return Tableau(
            "RadauIA(1)", np.array([[1.0]]), np.array([1.0]),
            np.array([0.0]), order=1,
        )
    c = _poly_derivative_roots(s, s - 1, s - 1)
    b = _quadrature_weights(c)
    # D(s): sum_i b_i c_i^(k-1) a_ij = (b_j / k) (1 - c_j^k), k = 1..s,
    # solved column by column.
    m = np.array([[b[i] * c[i] ** (k - 1) for i in range(s)]
                  for k in range(1, s + 1)])
    a = np.zeros((s, s))
    for j in range(s):
        rhs = np.array(
            [b[j] / k * (1.0 - c[j] ** k) for k in range(1, s + 1)]
        )
        a[:, j] = np.linalg.solve(m, rhs)
    return Tableau(f"RadauIA({2 * s - 1})", a, b, c, order=2 * s - 1)


def lobatto_iiia(s: int) -> Tableau:
    """Lobatto IIIA collocation with ``s`` stages (order ``2s - 2``)."""
    if s < 2:
        raise ValueError("Lobatto IIIA needs at least two stages")
    c = _poly_derivative_roots(s - 1, s - 1, s - 2)
    a = _collocation_a(c)
    b = _quadrature_weights(c)
    return Tableau(f"LobattoIIIA({2 * s - 2})", a, b, c, order=2 * s - 2)


def lobatto_iiic(s: int) -> Tableau:
    """Lobatto IIIC with ``s`` stages (order ``2s - 2``).

    Nodes are the Lobatto quadrature points (including both endpoints);
    the matrix satisfies ``a_i1 = b_1`` plus the ``C(s-1)`` moment
    conditions — the defining property of the IIIC family.
    """
    if s < 2:
        raise ValueError("Lobatto IIIC needs at least two stages")
    c = _poly_derivative_roots(s - 1, s - 1, s - 2)
    b = _quadrature_weights(c)
    a = np.zeros((s, s))
    for i in range(s):
        # Unknowns a_i1..a_is: first equation pins a_i1 = b_1, the rest
        # are moment conditions sum_j a_ij c_j^k = c_i^(k+1)/(k+1),
        # k = 0..s-2.
        m = np.zeros((s, s))
        rhs = np.zeros(s)
        m[0, 0] = 1.0
        rhs[0] = b[0]
        for k in range(s - 1):
            m[k + 1, :] = c**k
            rhs[k + 1] = c[i] ** (k + 1) / (k + 1)
        a[i] = np.linalg.solve(m, rhs)
    return Tableau(f"LobattoIIIC({2 * s - 2})", a, b, c, order=2 * s - 2)

"""Grid-native PIRK stepping through compiled stencil kernels.

This module is the actual Offsite–YaskSite integration point: instead
of calling an opaque ``rhs(t, y)`` vector function, the PIRK corrector
iterations evaluate the IVP's *stencil* via kernels produced by
:mod:`repro.codegen` — i.e. the very kernels the tuner selected.  The
linear combinations run as fused NumPy passes matching the chosen
implementation variant's schedule.

Numerical equivalence with the vector-based :class:`repro.ode.PIRK`
stepper is enforced in the test suite.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.codegen.compiler import CompiledKernel, compile_kernel
from repro.codegen.plan import KernelPlan
from repro.grid.grid import Grid
from repro.ode.ivp import IVP
from repro.ode.tableau import Tableau
from repro.stencil.spec import StencilSpec


@dataclass
class GridPirkSolver:
    """PIRK integrator whose RHS sweeps are compiled stencil kernels.

    Works for IVPs whose right-hand side is an affine stencil of the
    state (``HeatND``): the IVP's stencil spec must compute
    ``u + a * L(u)`` so that the pure RHS is recovered as
    ``(spec(u) - u) / 1`` with ``a`` bound to the physical factor.

    Parameters
    ----------
    ivp:
        A stencil-coupled IVP (``ivp.stencil`` must be set).
    tableau:
        Implicit base tableau (Radau IIA / Lobatto IIIC).
    corrector_steps:
        PIRK iteration count ``m``.
    plan:
        Kernel plan for the stencil sweeps (e.g. YaskSite's analytic
        block choice); defaults to an unblocked sweep.
    """

    ivp: IVP
    tableau: Tableau
    corrector_steps: int
    plan: KernelPlan | None = None
    alpha: float = 1.0  # diffusion coefficient the IVP was built with

    def __post_init__(self) -> None:
        if self.ivp.stencil is None or self.ivp.grid_shape is None:
            raise ValueError(f"{self.ivp.name} is not stencil-coupled")
        if self.tableau.explicit:
            raise ValueError("PIRK iterates an implicit base method")
        if self.corrector_steps < 1:
            raise ValueError("need at least one corrector step")
        self._spec: StencilSpec = self.ivp.stencil
        self._shape = self.ivp.grid_shape
        plan = self.plan or KernelPlan(block=self._shape)
        self._kernel: CompiledKernel = compile_kernel(
            self._spec, self._shape, plan
        )
        # Stage and RHS storage, allocated once.
        s = self.tableau.stages
        halo = self._spec.radius
        self._stage_grids = [
            Grid(f"Y{l}", self._shape, halo) for l in range(s)
        ]
        self._f_grids = [Grid(f"F{l}", self._shape, halo) for l in range(s)]
        self._rhs_factor = self._extract_rhs_factor()

    @property
    def name(self) -> str:
        """Stepper name (Stepper protocol)."""
        return f"GridPIRK[{self.tableau.name}, m={self.corrector_steps}]"

    @property
    def order(self) -> int:
        """Convergence order min(base order, m + 1)."""
        return min(self.tableau.order, self.corrector_steps + 1)

    def _extract_rhs_factor(self) -> float:
        """Physical scale of the stencil RHS (alpha / dx^2 for heat)."""
        n = self._shape[0]
        dx = 1.0 / (n + 1)
        return 1.0 / dx**2  # HeatND convention; alpha folded into `a`

    def _rhs_sweep(self, u: np.ndarray, out: np.ndarray) -> None:
        """out <- f(u) using the compiled stencil kernel.

        The heat spec computes ``u + a * L(u)``; binding ``a`` to the
        diffusion coefficient makes the pure RHS
        ``(spec(u) - u) / dx^2``.
        """
        spec = self._spec
        in_name = max(
            spec.offsets, key=lambda g: (len(spec.offsets[g]), g)
        )
        arrays = {in_name: self._in_buf.data, spec.output: self._out_buf.data}
        self._in_buf.interior[...] = u
        self._kernel._func(arrays, {"a": self.alpha})
        out[...] = (self._out_buf.interior - u) * self._rhs_factor

    def step(self, f, t: float, y: np.ndarray, h: float) -> np.ndarray:
        """Advance one PIRK step (Stepper protocol; ``f`` is ignored —
        the compiled stencil IS the right-hand side)."""
        tab = self.tableau
        s = tab.stages
        shape = self._shape
        u0 = y.reshape(shape)
        stage_y = [g.interior for g in self._stage_grids]
        stage_f = [g.interior for g in self._f_grids]
        for sy in stage_y:
            sy[...] = u0
        for _ in range(self.corrector_steps):
            for l in range(s):
                self._rhs_sweep(stage_y[l], stage_f[l])
            new = [
                u0 + h * sum(tab.a[i, l] * stage_f[l] for l in range(s))
                for i in range(s)
            ]
            for i in range(s):
                stage_y[i][...] = new[i]
        for l in range(s):
            self._rhs_sweep(stage_y[l], stage_f[l])
        out = u0 + h * sum(tab.b[l] * stage_f[l] for l in range(s))
        return out.ravel().copy()

    # Scratch halo'd buffers for the kernel sweeps, lazily created.
    @property
    def _in_buf(self) -> Grid:
        if not hasattr(self, "_in_grid"):
            self._in_grid = Grid("u", self._shape, self._spec.radius)
        return self._in_grid

    @property
    def _out_buf(self) -> Grid:
        if not hasattr(self, "_out_grid"):
            self._out_grid = Grid("u_new", self._shape, self._spec.radius)
        return self._out_grid

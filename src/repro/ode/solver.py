"""Fixed-step integration driver and convergence-order measurement."""

from __future__ import annotations

import math
from typing import Protocol

import numpy as np

from repro.ode.ivp import IVP


class Stepper(Protocol):
    """Anything with a ``step(f, t, y, h) -> y_next`` method."""

    name: str

    def step(self, f, t: float, y: np.ndarray, h: float) -> np.ndarray:
        """Advance one step."""
        ...


def integrate(
    stepper: Stepper,
    ivp: IVP,
    n_steps: int,
    t_end: float | None = None,
) -> np.ndarray:
    """Integrate ``ivp`` from ``t0`` to ``t_end`` in ``n_steps`` steps."""
    if n_steps <= 0:
        raise ValueError("n_steps must be positive")
    t_end = ivp.t_end if t_end is None else t_end
    h = (t_end - ivp.t0) / n_steps
    t = ivp.t0
    y = ivp.y0.copy()
    for _ in range(n_steps):
        y = stepper.step(ivp.rhs, t, y, h)
        t += h
    return y


def convergence_order(
    stepper: Stepper,
    ivp: IVP,
    base_steps: int = 16,
    levels: int = 3,
) -> float:
    """Estimate the convergence order by Richardson-style refinement.

    Integrates with ``base_steps * 2^k`` steps for ``k = 0..levels`` and
    fits the slope of ``log(error)`` vs ``log(h)``.
    """
    if ivp.exact is None:
        raise ValueError("convergence_order needs an exact solution")
    errors = []
    hs = []
    for k in range(levels + 1):
        n = base_steps * 2**k
        y = integrate(stepper, ivp, n)
        err = ivp.error(ivp.t_end, y)
        if err <= 0:
            err = 1e-300
        errors.append(err)
        hs.append((ivp.t_end - ivp.t0) / n)
    log_e = np.log(errors)
    log_h = np.log(hs)
    slope = np.polyfit(log_h, log_e, 1)[0]
    if not math.isfinite(slope):
        raise RuntimeError("order fit failed (non-finite errors)")
    return float(slope)

"""Parallel Iterated Runge-Kutta (PIRK) methods.

PIRK methods turn an implicit RK tableau (here: Radau IIA or Lobatto
IIIC) into an explicit scheme by fixed-point iteration::

    Y_i^(0)  = y_n
    Y_i^(j)  = y_n + h * sum_l a_il f(t + c_l h, Y_l^(j-1)),   j = 1..m
    y_(n+1)  = y_n + h * sum_l b_l  f(t + c_l h, Y_l^(m))

All stages of one corrector sweep are independent — that is the
"parallel" in the name and the reason each sweep maps onto the stencil
kernels YaskSite generates.  The convergence order is
``min(p_base, m + 1)``.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.ode.tableau import Tableau

RhsFunc = Callable[[float, np.ndarray], np.ndarray]


class PIRK:
    """PIRK stepper over an implicit base tableau."""

    def __init__(self, tableau: Tableau, corrector_steps: int) -> None:
        if tableau.explicit:
            raise ValueError("PIRK iterates an *implicit* base method")
        if corrector_steps < 1:
            raise ValueError("need at least one corrector step")
        self.tableau = tableau
        self.m = corrector_steps

    @property
    def name(self) -> str:
        """Method name including corrector count."""
        return f"PIRK[{self.tableau.name}, m={self.m}]"

    @property
    def order(self) -> int:
        """Convergence order: ``min(base order, m + 1)``."""
        return min(self.tableau.order, self.m + 1)

    @property
    def stages(self) -> int:
        """Stage count of the base method."""
        return self.tableau.stages

    def rhs_evals_per_step(self) -> int:
        """Function evaluations per time step (tuning-cost bookkeeping)."""
        return self.stages * (self.m + 1)

    def step(self, f: RhsFunc, t: float, y: np.ndarray, h: float) -> np.ndarray:
        """Advance ``y`` from ``t`` to ``t + h``."""
        tab = self.tableau
        s = tab.stages
        stage_y = np.broadcast_to(y, (s,) + y.shape).copy()
        stage_f = np.empty_like(stage_y)
        for _ in range(self.m):
            for l in range(s):
                stage_f[l] = f(t + tab.c[l] * h, stage_y[l])
            # All stages update from the *previous* iterate - parallel.
            stage_y = y + h * np.tensordot(tab.a, stage_f, axes=(1, 0))
        for l in range(s):
            stage_f[l] = f(t + tab.c[l] * h, stage_y[l])
        return y + h * np.tensordot(tab.b, stage_f, axes=(0, 0))

"""Explicit ODE methods and initial value problems.

The application side of the paper: Offsite tunes *parallel iterated
Runge-Kutta* (PIRK) methods, whose stage computations on stencil-coupled
IVPs (heat-type problems) are exactly the kernels YaskSite optimises.

* :mod:`repro.ode.tableau` — Butcher tableaux; collocation tableaux
  (Radau IIA, Lobatto IIIC) are derived numerically from their nodes.
* :mod:`repro.ode.rk` — classic explicit RK steppers.
* :mod:`repro.ode.pirk` — the PIRK predictor/corrector scheme.
* :mod:`repro.ode.ivp` — IVP library (Heat1D/2D/3D, Wave1D, Cusp,
  InverterChain).
* :mod:`repro.ode.solver` — fixed-step integration and convergence
  measurement.
"""

from repro.ode.tableau import (
    Tableau,
    bogacki_shampine,
    euler,
    gauss_legendre,
    heun,
    lobatto_iiia,
    lobatto_iiic,
    radau_ia,
    radau_iia,
    rk4,
)
from repro.ode.rk import ExplicitRK
from repro.ode.pirk import PIRK
from repro.ode.ivp import (
    IVP,
    Brusselator2D,
    Cusp,
    HeatND,
    InverterChain,
    Wave1D,
    get_ivp,
)
from repro.ode.adaptive import AdaptiveRK, EmbeddedPair, bs32, dp54
from repro.ode.solver import convergence_order, integrate
from repro.ode.gridsolver import GridPirkSolver

__all__ = [
    "Tableau",
    "euler",
    "heun",
    "rk4",
    "bogacki_shampine",
    "radau_iia",
    "radau_ia",
    "gauss_legendre",
    "lobatto_iiia",
    "lobatto_iiic",
    "ExplicitRK",
    "PIRK",
    "IVP",
    "HeatND",
    "Wave1D",
    "Cusp",
    "InverterChain",
    "Brusselator2D",
    "get_ivp",
    "AdaptiveRK",
    "EmbeddedPair",
    "bs32",
    "dp54",
    "integrate",
    "convergence_order",
    "GridPirkSolver",
]

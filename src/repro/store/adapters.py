"""Thin :class:`~repro.store.tier.Tier` adapters over existing stores.

The tuning database (single-file and segmented — the segmented store
subclasses :class:`~repro.offsite.database.TuningDatabase`, so one
adapter covers both) and the checkpoint substrate keep their own
persistence logic; these adapters bolt the uniform tier ledger and
``stats()`` shape on top so ``/metrics`` and the fabric fan-in read one
ledger shape for every layer.
"""

from __future__ import annotations

from repro.store.tier import Tier

# NOTE: neither repro.offsite.database nor repro.autotune.checkpoint is
# imported here — both packages (transitively) import
# repro.cachesim.memo, which builds on repro.store.tier, so a top-level
# import would close an import cycle.  The adapters duck-type their
# wrapped objects instead: DatabaseTier needs get/lookup/put/__len__
# (the TuningDatabase surface, segmented subclass included), and
# CheckpointTier needs get_raw/put_raw/flush/__len__ (JsonCheckpoint).

__all__ = ["DatabaseTier", "CheckpointTier"]


class DatabaseTier(Tier):
    """The warm tuning database as a tier (exact and nearest-grid).

    Wraps a :class:`~repro.offsite.database.TuningDatabase` (or its
    segmented fabric subclass) without changing its persistence: the
    server keeps calling ``snapshot_for_persist``/``write_records`` on
    the wrapped object; this adapter only ledgers the serving path.
    """

    def __init__(self, database, name: str = "database") -> None:
        super().__init__(name)
        self.database = database

    def __len__(self) -> int:
        return len(self.database)

    def get(self, key):
        """Exact :class:`~repro.offsite.database.TuningKey` lookup."""
        record = self.database.get(key)
        if record is None:
            self.ledger.record_miss()
            return None
        self.ledger.record_hit()
        return record

    def lookup(self, key):
        """Exact-else-nearest-grid lookup, ledgered the same way."""
        record = self.database.lookup(key)
        if record is None:
            self.ledger.record_miss()
            return None
        self.ledger.record_hit()
        return record

    def put(self, record, value=None) -> None:
        """Insert a record (single-argument, keyed by the record)."""
        self.database.put(record)
        self.ledger.record_put()


class CheckpointTier(Tier):
    """A crash-safe checkpoint file as a tier.

    ``get``/``put`` map onto the checkpoint's raw JSON entries;
    ``close`` flushes, so a stack teardown persists whatever the run
    completed.  Resumed entries count as hits — exactly the
    ``resumed_jobs`` semantics the tuner ledgers surface.  ``checkpoint``
    is any object with the :class:`repro.autotune.checkpoint.JsonCheckpoint`
    surface (``get_raw``/``put_raw``/``flush``/``__len__``).
    """

    def __init__(self, checkpoint, name: str = "checkpoint") -> None:
        super().__init__(name)
        self.checkpoint = checkpoint

    def __len__(self) -> int:
        return len(self.checkpoint)

    def get(self, key: str):
        value = self.checkpoint.get_raw(key)
        if value is None:
            self.ledger.record_miss()
            return None
        self.ledger.record_hit()
        return value

    def put(self, key: str, value) -> None:
        self.checkpoint.put_raw(key, value)
        self.ledger.record_put()

    def close(self) -> None:
        self.checkpoint.flush()

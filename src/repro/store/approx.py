"""Near-match approximate tier: interpolated answers with a confidence.

The Offsite paper's move — model-driven answers standing in for exact
measurement — applied to serving: for the *same* request family (same
stencil/tuner/machine/every non-grid parameter) with a *nearby* grid,
an answer interpolated from stored exact observations is often good
enough, and it costs microseconds instead of a full simulation.

The contract (enforced here and by the server wiring):

* every served answer carries ``"approximate": true`` and a numeric
  ``"confidence"`` in (0, 1];
* confidence is the grid-proximity bound
  ``1 - max_i |g_i - n_i| / max(g_i, n_i)`` to the nearest supporting
  observation — an exact-grid re-serve is 1.0, a grid twice as large
  is 0.5;
* below the caller's threshold the tier declines (a ledger miss) and
  the request falls through to exact computation;
* only *exact, non-degraded* results are ever observed — approximate
  answers are never fed back, so the support set cannot drift;
* the tier never writes into any exact tier (the server simply never
  puts its answers anywhere).

Whitelisted numeric fields are linearly interpolated in grid *volume*
between the two nearest observations (one-sided extrapolation clamps
to nearest — extrapolating a performance model past its support is how
confident nonsense gets served); everything else is copied from the
nearest observation, with ``grid`` rewritten to the requested one.
"""

from __future__ import annotations

import json
import threading
from collections import OrderedDict
from math import prod

from repro.store.tier import Tier

__all__ = ["NearMatchTier", "grid_confidence", "INTERPOLATED_FIELDS"]

#: endpoint → result fields interpolated linearly in grid volume.
#: ``t_data_cycles`` is a per-level list and interpolates elementwise.
INTERPOLATED_FIELDS = {
    "/predict": (
        "t_ol_cycles",
        "t_nol_cycles",
        "t_ecm_cycles",
        "cycles_per_lup",
        "mlups",
        "mem_bytes_per_lup",
        "t_data_cycles",
    ),
    "/tune": (
        "best_mlups",
        "simulated_run_seconds",
    ),
}


def grid_confidence(
    grid: tuple[int, ...], near: tuple[int, ...]
) -> float:
    """Proximity bound in [0, 1]: 1.0 iff identical, 0.0 at the far end.

    Per-axis relative distance, worst axis wins — a request that is
    close in two axes but doubled in the third is a 0.5, not a 0.83:
    stencil traffic is dominated by the worst-blocked axis, so the
    bound must be too.
    """
    if len(grid) != len(near):
        return 0.0
    worst = max(
        abs(g - n) / max(g, n) for g, n in zip(grid, near)
    ) if grid else 1.0
    return 1.0 - worst


def _family_key(endpoint: str, normalized: dict) -> str:
    """Identity of one request family: everything except the grid."""
    rest = {k: v for k, v in normalized.items() if k != "grid"}
    return json.dumps(
        {"endpoint": endpoint, "payload": rest},
        sort_keys=True, separators=(",", ":"),
    )


def _interpolate(base: float, other: float, weight: float) -> float:
    return base * (1.0 - weight) + other * weight


class NearMatchTier(Tier):
    """Bounded store of exact observations served by interpolation.

    ``capacity`` bounds total observations across all families;
    eviction is LRU over families (the least recently *served or
    observed* family goes first).
    """

    def __init__(
        self, name: str = "approx", capacity: int = 512
    ) -> None:
        super().__init__(name)
        self.capacity = max(0, capacity)
        self._lock = threading.Lock()
        # family key → {grid tuple: exact result dict}
        self._families: OrderedDict[str, dict[tuple[int, ...], dict]] = (
            OrderedDict()
        )
        self._count = 0

    def __len__(self) -> int:
        return self._count

    # -- observation (exact results only; the server gates) ------------
    def observe(self, endpoint: str, normalized: dict, result: dict) -> None:
        """Record one exact result as interpolation support.

        The caller must pass only exact, non-degraded results; a result
        already marked approximate is refused here as a second line of
        defense (feeding interpolations back would compound error
        silently).
        """
        if endpoint not in INTERPOLATED_FIELDS or self.capacity <= 0:
            return
        if result.get("approximate"):
            return
        grid = normalized.get("grid")
        if not isinstance(grid, (list, tuple)) or not grid:
            return
        key = _family_key(endpoint, normalized)
        # Deep copy through JSON: the stored support must not alias the
        # response dict the server may still hand to waiters.
        stored = json.loads(json.dumps(result))
        with self._lock:
            family = self._families.get(key)
            if family is None:
                family = self._families[key] = {}
            self._families.move_to_end(key)
            if tuple(grid) not in family:
                self._count += 1
            family[tuple(grid)] = stored
            evicted = 0
            while self._count > self.capacity and len(self._families) > 1:
                _, dropped = self._families.popitem(last=False)
                self._count -= len(dropped)
                evicted += len(dropped)
        self.ledger.record_put()
        if evicted:
            self.ledger.record_eviction(evicted)

    # -- serving --------------------------------------------------------
    def get(self, key):
        """Tier-protocol get is exact-family only; prefer lookup()."""
        raise NotImplementedError(
            "NearMatchTier serves via lookup(endpoint, normalized, "
            "min_confidence)"
        )

    def put(self, key, value) -> None:
        raise NotImplementedError(
            "NearMatchTier stores via observe(endpoint, normalized, result)"
        )

    def lookup(
        self, endpoint: str, normalized: dict, min_confidence: float
    ) -> tuple[dict, float] | None:
        """Interpolated ``(result, confidence)`` or ``None``.

        ``None`` (a ledger miss) when the family is unknown, the grids
        have a different rank, or the best achievable confidence is
        below ``min_confidence`` — the server then falls back to exact
        computation.
        """
        if endpoint not in INTERPOLATED_FIELDS:
            return None
        grid = tuple(normalized.get("grid", ()))
        key = _family_key(endpoint, normalized)
        with self._lock:
            family = self._families.get(key)
            if family:
                self._families.move_to_end(key)
            candidates = [
                (g, res)
                for g, res in (family or {}).items()
                if len(g) == len(grid)
            ]
        if not candidates:
            self.ledger.record_miss()
            return None
        scored = sorted(
            ((grid_confidence(grid, g), g, res) for g, res in candidates),
            key=lambda t: t[0],
            reverse=True,
        )
        confidence, near_grid, near_res = scored[0]
        if confidence < min_confidence or confidence <= 0.0:
            self.ledger.record_miss()
            return None
        result = json.loads(json.dumps(near_res))
        target_vol = prod(grid)
        near_vol = prod(near_grid)
        # Second support point for linear interpolation in volume: the
        # best-confidence candidate on the *other side* of the target
        # volume.  Without one (pure extrapolation) the nearest
        # observation is served as-is — clamping, not extrapolating.
        other = next(
            (
                (g, res)
                for _, g, res in scored[1:]
                if (prod(g) - target_vol) * (near_vol - target_vol) < 0
            ),
            None,
        )
        if other is not None and near_vol != target_vol:
            other_vol = prod(other[0])
            weight = (target_vol - near_vol) / (other_vol - near_vol)
            for field in INTERPOLATED_FIELDS[endpoint]:
                a, b = near_res.get(field), other[1].get(field)
                if isinstance(a, (int, float)) and isinstance(b, (int, float)):
                    result[field] = _interpolate(float(a), float(b), weight)
                elif (
                    isinstance(a, list)
                    and isinstance(b, list)
                    and len(a) == len(b)
                    and all(isinstance(v, (int, float)) for v in a + b)
                ):
                    result[field] = [
                        _interpolate(float(x), float(y), weight)
                        for x, y in zip(a, b)
                    ]
        if "grid" in result:
            result["grid"] = list(grid)
        result["approximate"] = True
        result["confidence"] = confidence
        self.ledger.record_hit()
        return result, confidence

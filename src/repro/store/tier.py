"""The tier protocol: one ledger shape for every cache/persistence layer.

Before this module the repo had four independently-grown store layers —
the service response LRU, the traffic memo's memory+disk pair, the
tuning database and the checkpoint substrate — each with its own
eviction, hit/miss accounting and crash-safety conventions.  A
:class:`Tier` is the common denominator: a named key→value store with a
uniform :class:`TierLedger` (hits / misses / puts / evictions, with
``hit_rate`` honestly ``None`` while untouched), a ``stats()`` snapshot
every metrics surface reads, and an optional crash-safe envelope
backing (:class:`DiskJsonTier`, reusing :mod:`repro.util.crashsafe`).

Concrete tiers here are the two building blocks everything composes
from: :class:`LruTier` (in-memory, optional capacity with eviction
accounting) and :class:`DiskJsonTier` (one checksummed JSON file per
key, quarantine-on-corrupt, atomic publish).  Adapters re-homing the
tuning database and checkpoints live in :mod:`repro.store.adapters`;
the near-match approximate tier in :mod:`repro.store.approx`; the
composer in :mod:`repro.store.stack`.
"""

from __future__ import annotations

import itertools
import json
import os
import threading
from collections import OrderedDict
from pathlib import Path
from typing import Callable

from repro import faults
from repro.util import crashsafe

__all__ = ["TierLedger", "Tier", "LruTier", "DiskJsonTier"]


class TierLedger:
    """Thread-safe hit/miss/put/eviction counters of one tier.

    ``hit_rate`` is ``None`` (not 0.0) while the tier has seen no
    lookups: an untouched tier and a tier that misses everything are
    different operational states, and the fabric fan-in must not
    conflate them.
    """

    __slots__ = ("_lock", "hits", "misses", "puts", "evictions")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.puts = 0
        self.evictions = 0

    def record_hit(self, n: int = 1) -> None:
        with self._lock:
            self.hits += n

    def record_miss(self, n: int = 1) -> None:
        with self._lock:
            self.misses += n

    def record_put(self, n: int = 1) -> None:
        with self._lock:
            self.puts += n

    def record_eviction(self, n: int = 1) -> None:
        with self._lock:
            self.evictions += n

    def reset(self) -> None:
        with self._lock:
            self.hits = self.misses = self.puts = self.evictions = 0

    @property
    def hit_rate(self) -> float | None:
        total = self.hits + self.misses
        return self.hits / total if total else None

    def snapshot(self) -> dict:
        """JSON-ready counters (one consistent read)."""
        with self._lock:
            hits, misses = self.hits, self.misses
            puts, evictions = self.puts, self.evictions
        total = hits + misses
        return {
            "hits": hits,
            "misses": misses,
            "puts": puts,
            "evictions": evictions,
            "hit_rate": hits / total if total else None,
        }


class Tier:
    """Base tier: named store + ledger; subclasses implement the I/O.

    The contract every layer shares:

    ``get(key)``
        Returns the stored value or ``None``; counts exactly one hit or
        miss on the ledger.
    ``put(key, value)``
        Stores (or refuses — admission is the stack's job); counts one
        put, plus one eviction per displaced entry.
    ``stats()``
        The ledger snapshot plus ``size`` — the one shape
        ``/metrics`` and the fabric fan-in read.
    ``close()``
        Flush/teardown hook (checkpoints flush, disks are already
        durable, memories no-op).
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self.ledger = TierLedger()

    def __len__(self) -> int:  # pragma: no cover - overridden
        return 0

    def get(self, key):  # pragma: no cover - overridden
        raise NotImplementedError

    def put(self, key, value) -> None:  # pragma: no cover - overridden
        raise NotImplementedError

    def stats(self) -> dict:
        """Ledger snapshot + current entry count."""
        snap = self.ledger.snapshot()
        snap["size"] = len(self)
        return snap

    def close(self) -> None:
        """Flush/teardown; default no-op."""


class LruTier(Tier):
    """In-memory LRU tier (optionally capacity-bounded).

    ``capacity=None`` means unbounded (the traffic memo's memory tier);
    ``capacity=0`` stores nothing (a disabled response cache).  Values
    are returned as stored — callers that must not share mutable state
    copy on their side (the traffic memo re-hydrates reports per hit).
    """

    def __init__(self, name: str = "lru", capacity: int | None = None) -> None:
        super().__init__(name)
        self.capacity = capacity
        self._lock = threading.Lock()
        self._data: OrderedDict[str, object] = OrderedDict()

    def __len__(self) -> int:
        return len(self._data)

    def get(self, key: str):
        with self._lock:
            try:
                value = self._data[key]
            except KeyError:
                self.ledger.record_miss()
                return None
            self._data.move_to_end(key)
        self.ledger.record_hit()
        return value

    def peek(self, key: str):
        """Lookup without touching recency or the ledger (promotions)."""
        with self._lock:
            return self._data.get(key)

    def put(self, key: str, value) -> None:
        if self.capacity is not None and self.capacity <= 0:
            return
        evicted = 0
        with self._lock:
            self._data[key] = value
            self._data.move_to_end(key)
            if self.capacity is not None:
                while len(self._data) > self.capacity:
                    self._data.popitem(last=False)
                    evicted += 1
        self.ledger.record_put()
        if evicted:
            self.ledger.record_eviction(evicted)

    def clear(self) -> None:
        """Drop all entries (does not reset the ledger)."""
        with self._lock:
            self._data.clear()


class DiskJsonTier(Tier):
    """One crash-safe JSON file per key under a directory.

    The persistence discipline every disk layer in the repo follows,
    extracted from the traffic memo:

    * writes go to a per-writer unique temp file and publish with an
      atomic ``os.replace`` — concurrent writers never collide and
      readers never see torn JSON;
    * an unreadable file (flaky I/O, injected read fault) is a plain
      miss and left in place;
    * a file that parses wrong or fails its checksum is *quarantined*
      (``<name>.corrupt.<pid>.<n>``) — it would shadow every future
      write of the key forever;
    * payloads are wrapped in :mod:`repro.util.crashsafe` checksummed
      envelopes (plain legacy files still load).

    ``validator`` (optional) is called with the decoded payload before
    it is trusted; a raising validator marks the file corrupt.
    ``read_fault``/``write_fault`` name the :mod:`repro.faults` points
    armed around the I/O (the memo keeps its historical ``memo.read`` /
    ``memo.write`` names).
    """

    def __init__(
        self,
        name: str,
        directory: str | os.PathLike,
        validator: Callable[[dict], object] | None = None,
        read_fault: str | None = None,
        write_fault: str | None = None,
    ) -> None:
        super().__init__(name)
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.validator = validator
        self.read_fault = read_fault
        self.write_fault = write_fault
        self._tmp_counter = itertools.count()

    def __len__(self) -> int:
        try:
            return sum(1 for _ in self.directory.glob("*.json"))
        except OSError:
            return 0

    def path_for(self, key: str) -> Path:
        return self.directory / f"{key}.json"

    def _load(self, path: Path) -> dict | None:
        try:
            if self.read_fault:
                faults.check(self.read_fault)
            raw = path.read_bytes()
        except FileNotFoundError:
            return None
        except OSError:
            return None  # flaky I/O: maybe fine, keep the file
        try:
            # json.loads handles the decode: undecodable bytes parse
            # wrong (UnicodeDecodeError is a ValueError) → quarantine.
            data = json.loads(raw)
            rec = crashsafe.unwrap(data) if crashsafe.is_envelope(data) else data
            if self.validator is not None:
                self.validator(rec)
        except (crashsafe.CorruptPayload, KeyError, TypeError, ValueError):
            crashsafe.quarantine(path)
            return None
        return rec

    def get(self, key: str) -> dict | None:
        rec = self._load(self.path_for(key))
        if rec is None:
            self.ledger.record_miss()
            return None
        self.ledger.record_hit()
        return rec

    def put(self, key: str, value: dict) -> None:
        tmp = self.directory / (
            f".{key}.{os.getpid()}.{next(self._tmp_counter)}.tmp"
        )
        try:
            if self.write_fault:
                faults.check(self.write_fault)
            tmp.write_text(json.dumps(crashsafe.wrap(value)))
            os.replace(tmp, self.path_for(key))
        except OSError:
            try:
                tmp.unlink(missing_ok=True)
            except OSError:
                pass
            return
        self.ledger.record_put()

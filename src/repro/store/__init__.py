"""Pluggable tier-stack store substrate.

One protocol (:class:`Tier`), one ledger shape (:class:`TierLedger`),
one composer (:class:`TierStack`) — every cache/persistence layer in
the repo (response LRU, traffic memo memory+disk, tuning database,
checkpoints, the near-match approximate tier) is a tier on this
substrate, and every metrics surface reads the same ``stats()`` shape.
"""

from repro.store.adapters import CheckpointTier, DatabaseTier
from repro.store.approx import (
    INTERPOLATED_FIELDS,
    NearMatchTier,
    grid_confidence,
)
from repro.store.stack import TierStack, admit_all
from repro.store.tier import DiskJsonTier, LruTier, Tier, TierLedger

__all__ = [
    "Tier",
    "TierLedger",
    "LruTier",
    "DiskJsonTier",
    "TierStack",
    "admit_all",
    "DatabaseTier",
    "CheckpointTier",
    "NearMatchTier",
    "grid_confidence",
    "INTERPOLATED_FIELDS",
]

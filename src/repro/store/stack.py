"""TierStack: ordered tiers + admission predicates + hit promotion.

A stack composes tiers fastest-first.  ``get`` walks down until a tier
hits, then promotes the value into every faster tier above it (the
traffic memo's disk→memory promotion, generalized).  ``put`` offers the
value to every tier whose *admission predicate* accepts it — the
predicate is where serving policy lives as data instead of scattered
``if``\\ s: "degraded results never enter the response cache" and
"approximate results never enter an exact tier" are both one-line
predicates.
"""

from __future__ import annotations

from typing import Callable

from repro.store.tier import Tier

__all__ = ["TierStack", "admit_all"]


def admit_all(key, value) -> bool:
    """The default admission predicate: store everything."""
    return True


class TierStack:
    """Ordered composition of tiers with per-tier admission.

    Parameters
    ----------
    tiers:
        Fastest-first sequence of :class:`Tier` instances.
    admit:
        Optional ``{tier_name: predicate(key, value) -> bool}``.  A
        tier without an entry admits everything.  Predicates gate
        *writes only* — reads always consult every tier, because a
        value another writer admitted is still valid to serve.
    """

    def __init__(
        self,
        tiers: list[Tier] | tuple[Tier, ...],
        admit: dict[str, Callable[[object, object], bool]] | None = None,
    ) -> None:
        if not tiers:
            raise ValueError("a TierStack needs at least one tier")
        names = [t.name for t in tiers]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate tier names in stack: {names}")
        self.tiers: tuple[Tier, ...] = tuple(tiers)
        self.admit = dict(admit or {})

    def __len__(self) -> int:
        return len(self.tiers[0])

    def tier(self, name: str) -> Tier:
        """The member tier called ``name`` (KeyError if absent)."""
        for t in self.tiers:
            if t.name == name:
                return t
        raise KeyError(f"no tier {name!r} in stack")

    def get(self, key):
        """First hit walking fastest→slowest; promotes on the way back.

        Each tier counts its own hit/miss, so the per-tier ledgers
        stay meaningful: a memory miss served by disk is one memory
        miss *and* one disk hit.
        """
        for depth, tier in enumerate(self.tiers):
            value = tier.get(key)
            if value is None:
                continue
            for upper in self.tiers[:depth]:
                if self.admit.get(upper.name, admit_all)(key, value):
                    upper.put(key, value)
            return value
        return None

    def put(self, key, value) -> None:
        """Offer the value to every tier that admits it."""
        for tier in self.tiers:
            if self.admit.get(tier.name, admit_all)(key, value):
                tier.put(key, value)

    def stats(self) -> dict:
        """``{tier_name: tier.stats()}`` for every member."""
        return {tier.name: tier.stats() for tier in self.tiers}

    def close(self) -> None:
        """Close every member tier (flush checkpoints etc.)."""
        for tier in self.tiers:
            tier.close()

"""Multi-equation stencil solutions (YASK "stencil bundles").

Builds a three-equation bundle with a dependency chain, lets the
scheduler order it, compiles it to kernels, and validates execution
against the reference path.

Run with::

    python examples/solution_bundle.py
"""

import numpy as np

from repro.codegen import KernelPlan, compile_solution
from repro.stencil import Solution, heat, rename_grids, star
from repro.util import format_table

# A chain: flux = star(u); smoothed = heat(flux); out = star(smoothed).
eq1 = rename_grids(star(3, 1), {"u_new": "flux"}, name="flux_eq")
eq2 = rename_grids(
    heat(3), {"u": "flux", "u_new": "smoothed"}, name="smooth_eq"
)
eq3 = rename_grids(
    star(3, 2), {"u": "smoothed", "u_new": "out"}, name="out_eq"
)
# Deliberately registered out of order — the scheduler sorts them.
solution = Solution("pipeline", [eq3, eq1, eq2])

print(format_table([solution.describe()], title="Solution summary"))
print("schedule:", " -> ".join(eq.name for eq in solution.schedule()))
print("external inputs:", solution.inputs)

compiled = compile_solution(solution, (16, 16, 24), KernelPlan(block=(8, 8, 24)))
fields = compiled.allocate(seed=7)
reference_fields = compiled.allocate(seed=7)

expected = compiled.reference_run(reference_fields)
compiled.run(fields)
worst = max(
    np.abs(fields[name].interior - value).max()
    for name, value in expected.items()
)
print(f"\nmax |compiled - reference| over all outputs: {worst:.2e}")

print("\ngenerated C kernels:")
for name, source in compiled.c_sources.items():
    first_loop = next(l for l in source.splitlines() if "for (" in l)
    print(f"  {name}: {first_loop.strip()}")

"""Adaptive explicit integration on the Offsite problem mix.

Extension beyond the paper's fixed-step setting: embedded RK pairs with
PI step control on the nonlinear IVPs (Brusselator, Cusp), plus the
classic accuracy/steps trade-off on the wave equation.

Run with::

    python examples/adaptive_integration.py
"""

from repro.ode import AdaptiveRK, Brusselator2D, Cusp, Wave1D, bs32, dp54
from repro.util import format_table

rows = []
for pair_factory in (bs32, dp54):
    for ivp in (Wave1D(48, t_end=0.3), Brusselator2D(12, t_end=0.2),
                Cusp(24, t_end=5e-4)):
        solver = AdaptiveRK(pair_factory(), rtol=1e-6, atol=1e-9)
        res = solver.integrate(ivp)
        row = {
            "pair": pair_factory().name,
            "IVP": ivp.name,
            "accepted": res.steps_accepted,
            "rejected": res.steps_rejected,
            "rhs evals": res.rhs_evals,
        }
        if ivp.exact is not None:
            row["final error"] = f"{ivp.error(res.t, res.y):.2e}"
        rows.append(row)

print(format_table(rows, title="Adaptive integration (rtol=1e-6)"))
print(
    "\nThe 5th-order pair needs far fewer steps on smooth problems; the\n"
    "stiff CUSP ring forces both pairs to tiny stability-limited steps."
)

# Accuracy vs work on the wave equation.
print("\nTolerance sweep, DP5(4) on Wave1D:")
sweep = []
for rtol in (1e-4, 1e-6, 1e-8, 1e-10):
    ivp = Wave1D(48, t_end=0.3)
    res = AdaptiveRK(dp54(), rtol=rtol, atol=rtol * 1e-3).integrate(ivp)
    sweep.append(
        {
            "rtol": f"{rtol:.0e}",
            "steps": res.steps_total,
            "error": f"{ivp.error(res.t, res.y):.2e}",
        }
    )
print(format_table(sweep))

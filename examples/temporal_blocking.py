"""Wavefront temporal blocking: correctness and traffic reduction.

Fuses several Jacobi time steps with the 1-d time-skewing scheme and
shows (a) the result is bit-for-bit within floating-point tolerance of
plain time stepping and (b) the simulated memory traffic drops by
nearly the wavefront depth when slabs fit the cache.

Run with::

    python examples/temporal_blocking.py
"""

import numpy as np

from repro.blocking import WavefrontPlan, measure_wavefront, run_wavefront
from repro.cachesim import measure_sweep
from repro.codegen import KernelPlan, compile_kernel
from repro.experiments.common import clx
from repro.grid import GridSet
from repro.stencil import get_stencil
from repro.util import format_table

spec = get_stencil("3d7pt")
shape = (96, 8, 32)  # narrow planes so slabs fit the scaled caches
machine = clx()
wt = 4
slab = 3

# --- Correctness -------------------------------------------------------
ref = GridSet(spec, shape)
ref.randomize(1)
kernel = compile_kernel(spec, shape, KernelPlan(block=shape))
kernel.run_timesteps(ref, wt)
expected = ref["u"].interior.copy()

wf = GridSet(spec, shape)
wf.randomize(1)
plan = WavefrontPlan(spatial=KernelPlan(block=shape), wt=wt, slab=slab)
final = run_wavefront(spec, wf, plan)
diff = np.abs(wf[final].interior - expected).max()
print(f"wavefront (wt={wt}, slab={slab}) vs {wt} plain sweeps: "
      f"max diff = {diff:.2e}")

# --- Traffic -----------------------------------------------------------
grids = GridSet(spec, shape)
base = measure_sweep(spec, grids, KernelPlan(block=shape), machine)
last = len(base.loads) - 1
rows = [
    {
        "config": "spatial only",
        "mem B/LUP": round(base.bytes_per_lup(last), 1),
        "reduction": "1.00x",
    }
]
for depth in (2, 4, 8):
    p = WavefrontPlan(spatial=KernelPlan(block=shape), wt=depth, slab=slab)
    t = measure_wavefront(spec, grids, p, machine)
    b = t.bytes_per_lup(last)
    rows.append(
        {
            "config": f"wavefront wt={depth}",
            "mem B/LUP": round(b, 1),
            "reduction": f"{base.bytes_per_lup(last) / b:.2f}x",
        }
    )
print()
print(format_table(rows, title=f"Memory traffic, {spec.name} on {machine.name}"))

"""Define a custom CPU model from JSON and tune for it.

Shows the machine abstraction end to end: serialize a preset, edit it
into a hypothetical CPU (bigger L2, half the memory bandwidth), and
watch the model change its block choice and saturation prediction —
all without touching library code.

Run with::

    python examples/custom_machine.py
"""

import json
import tempfile
from pathlib import Path

from repro import YaskSite, get_stencil
from repro.ecm import scaling_curve
from repro.machine import cascade_lake_sp, load_machine, machine_to_dict

spec = get_stencil("3dlong_r4")
shape = (48, 48, 64)

# Start from Cascade Lake, shrink the caches for simulation scale.
base = cascade_lake_sp().scaled_caches(1 / 32)

# Hypothetical variant: a much larger outer cache hierarchy, but only
# half the memory bandwidth (levels must stay ordered small -> large).
data = machine_to_dict(base)
data["name"] = "HypotheticalCPU"
for cache in data["caches"]:
    if cache["name"] == "L2":
        cache["size_bytes"] *= 2
    if cache["name"] == "L3":
        cache["size_bytes"] *= 4
data["mem_bw_gbs"] /= 2
data["mem_bw_core_gbs"] /= 2

with tempfile.TemporaryDirectory() as tmp:
    path = Path(tmp) / "hypothetical.json"
    path.write_text(json.dumps(data, indent=2))
    custom = load_machine(path)

for machine in (base, custom):
    ys = YaskSite(machine)
    choice = ys.select_block(spec, shape)
    pred = choice.prediction
    curve = scaling_curve(pred, machine.mem_bw_gbs, machine.cores)
    sat = next((p.cores for p in curve if p.saturated), None)
    print(f"{machine.name:>18s}: block={choice.plan.describe():14s} "
          f"single-core={pred.mlups:6.1f} MLUP/s  "
          f"saturates at {sat} cores")

print(
    "\nThe bigger L2 relaxes the layer condition (larger blocks allowed);\n"
    "the halved bandwidth pulls the saturation point in."
)

"""Cross-architecture study: Cascade Lake vs Rome for the stencil suite.

Shows the machine-model abstraction at work: the same stencils, two
very different cache hierarchies (inclusive monolithic L3 vs per-CCX
victim L3), and per-machine block choices plus predicted scaling.

Run with::

    python examples/clx_vs_rome.py
"""

from repro import YaskSite, get_stencil
from repro.ecm import scaling_curve
from repro.util import format_table

SHAPE = (32, 32, 48)
STENCILS = ("3d7pt", "3d25pt", "3d27pt", "3dvarcoef")

rows = []
for machine_name in ("clx", "rome"):
    ys = YaskSite(machine_name, cache_scale=1 / 32)
    for name in STENCILS:
        spec = get_stencil(name)
        choice = ys.select_block(spec, SHAPE)
        pred = choice.prediction
        curve = scaling_curve(pred, ys.machine.mem_bw_gbs, ys.machine.cores)
        sat = next((p.cores for p in curve if p.saturated), None)
        rows.append(
            {
                "machine": ys.machine.name,
                "stencil": name,
                "block": "x".join(map(str, choice.plan.block)),
                "1-core MLUP/s": round(pred.mlups, 0),
                "socket MLUP/s": round(curve[-1].mlups, 0),
                "saturates at": sat or f">{ys.machine.cores}",
                "mem B/LUP": round(pred.memory_bytes_per_lup(), 1),
            }
        )

print(format_table(rows, title="CLX vs Rome (scaled machine models)"))
print(
    "\nNote the per-machine block choices and the different saturation\n"
    "points: Rome's higher aggregate bandwidth saturates much later."
)

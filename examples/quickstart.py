"""Quickstart: compile, predict and "measure" a stencil with YaskSite.

Run with::

    python examples/quickstart.py
"""

from repro import YaskSite, get_stencil
from repro.grid import GridSet

# Bind the tool to a target machine.  cache_scale shrinks the caches so
# the exact cache simulator is fast on laptop-sized grids (see
# DESIGN.md); drop the argument to model the full-size chip.
ys = YaskSite("clx", cache_scale=1 / 32)

# Pick a stencil from the evaluation suite: the 7-point Jacobi star.
spec = get_stencil("3d7pt")
shape = (32, 32, 48)

# 1. Analytic tuning: the ECM model selects the block size without
#    running anything.
choice = ys.select_block(spec, shape)
print(f"analytic block choice : {choice.plan.describe()}")
print(f"candidates examined   : {choice.candidates_examined}")
print(f"predicted performance : {choice.mlups:.0f} MLUP/s")
print(f"ECM notation          : {choice.prediction.notation()}")

# 2. Compile the kernel (generated Python is executed; matching C
#    source is emitted for inspection).
kernel = ys.compile(spec, shape)
print(f"\ncode generation took  : {kernel.codegen_seconds * 1e3:.1f} ms")
print("first lines of the generated C kernel:")
print("\n".join(kernel.c_source.splitlines()[:6]))

# 3. Run it on real data and check against the reference sweep.
grids = GridSet(spec, shape)
grids.randomize(seed=42)
reference = kernel.reference_sweep(grids)
kernel.run(grids)
max_diff = abs(grids.output.interior - reference).max()
print(f"\nmax |kernel - reference| = {max_diff:.2e}")

# 4. "Measure" it: the exact cache simulator replays the kernel's true
#    access stream and charges cycles for the observed traffic.
meas = ys.measure(spec, shape, kernel.plan)
print(f"simulated measurement  : {meas.mlups:.0f} MLUP/s")
err = 100.0 * (choice.mlups - meas.mlups) / meas.mlups
print(f"model vs measurement   : {err:+.1f}%")

"""Offsite + YaskSite: offline tuning of a PIRK method on Heat3D.

The workflow the paper's title describes: an explicit ODE method
(parallel iterated Runge-Kutta over a Radau IIA tableau) integrating a
stencil-coupled IVP; Offsite enumerates implementation variants and
ranks them with YaskSite's ECM predictions, then the choice is checked
against the exact-cache simulator and the numerics are verified.

Run with::

    python examples/ode_offsite.py
"""

import numpy as np

from repro.experiments.common import CACHE_SCALE
from repro.machine import cascade_lake_sp
from repro.ode import HeatND, PIRK, convergence_order, radau_iia
from repro.offsite import OffsiteTuner, execute_variant_step
from repro.util import format_table

machine = cascade_lake_sp().scaled_caches(CACHE_SCALE)
method = PIRK(radau_iia(4), corrector_steps=3)
grid_shape = (24, 24, 32)

print(f"method : {method.name} (order {method.order})")
print(f"IVP    : Heat3D on a {grid_shape} grid")
print(f"machine: {machine.name}\n")

# --- Performance: rank the implementation variants offline. ----------
report = OffsiteTuner(machine).tune(method, grid_shape, validate=True)
rows = [
    {
        "variant": t.variant,
        "sweeps/step": t.sweeps_per_step,
        "predicted ms/step": round(t.predicted_s * 1e3, 3),
        "measured ms/step": round(t.measured_s * 1e3, 3),
        "error %": round(t.error_pct, 1),
    }
    for t in sorted(report.timings, key=lambda t: t.predicted_s)
]
print(format_table(rows, title="Variant ranking (predicted order)"))
print(f"Kendall tau vs measured ranking: {report.kendall_tau:.2f}")
print(f"top-1 hit: {report.top1_hit}\n")

best = report.best_predicted().variant

# --- Numerics: the chosen variant computes the same step. ------------
ivp = HeatND(3, 12, t_end=0.001)
h = 1e-5
ref = method.step(ivp.rhs, 0.0, ivp.y0, h)
got = execute_variant_step(best, method.tableau, method.m, ivp.rhs, 0.0, ivp.y0, h)
print(f"chosen variant {best!r}: max |variant - PIRK| = "
      f"{np.abs(got - ref).max():.2e}")

# --- And the method really has its order. -----------------------------
from repro.ode import Wave1D

order = convergence_order(method, Wave1D(48, t_end=0.2), base_steps=20)
print(f"measured convergence order: {order:.2f} (expected {method.order})")

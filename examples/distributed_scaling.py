"""Distributed (multi-node) scaling with the YASK-style MPI layer model.

Weak and strong scaling of the 7-point stencil across Cascade Lake
nodes connected by a 100 Gb/s-class network, including the effect of
the rank decomposition choice.

Run with::

    python examples/distributed_scaling.py
"""

from repro.dist import (
    NetworkModel,
    RankDecomposition,
    best_decomposition,
    predict_distributed,
)
from repro.machine import cascade_lake_sp
from repro.stencil import get_stencil
from repro.util import format_table

spec = get_stencil("3d7pt")
machine = cascade_lake_sp()

# --- Strong scaling on a fixed 256^3 grid ------------------------------
rows = []
for n in (1, 2, 4, 8, 16, 32, 64):
    pred = predict_distributed(spec, (256, 256, 256), n, machine)
    rows.append(
        {
            "ranks": n,
            "decomp": "x".join(map(str, pred.decomposition.ranks)),
            "local": "x".join(map(str, pred.decomposition.local_shape)),
            "GLUP/s": round(pred.total_mlups / 1e3, 2),
            "efficiency": round(pred.parallel_efficiency, 3),
        }
    )
print(format_table(rows, title="Strong scaling, 3d7pt on 256^3"))

# --- Why the decomposition matters --------------------------------------
print("\nDecomposition choice at 8 ranks:")
rows = []
for ranks in ((8, 1, 1), (2, 2, 2), (1, 2, 4)):
    decomp = RankDecomposition((256, 256, 256), ranks)
    pred = predict_distributed(
        spec, (256, 256, 256), 8, machine, decomposition=decomp
    )
    rows.append(
        {
            "ranks": "x".join(map(str, ranks)),
            "halo KiB/step": round(
                decomp.exchange_bytes_per_step(spec.radius) / 1024, 1
            ),
            "messages": decomp.neighbor_count(),
            "efficiency": round(pred.parallel_efficiency, 3),
        }
    )
best = best_decomposition((256, 256, 256), 8, spec.radius)
rows.append(
    {
        "ranks": "x".join(map(str, best.ranks)) + "  <- auto",
        "halo KiB/step": round(
            best.exchange_bytes_per_step(spec.radius) / 1024, 1
        ),
        "messages": best.neighbor_count(),
        "efficiency": "",
    }
)
print(format_table(rows))

# --- Network sensitivity -------------------------------------------------
print("\nSlow network (10x latency, 1/4 bandwidth), strong scaling at 64 ranks:")
slow = NetworkModel(latency_us=15.0, bandwidth_gbs=3.0, injection_gbs=6.0)
fast = predict_distributed(spec, (256, 256, 256), 64, machine)
degraded = predict_distributed(
    spec, (256, 256, 256), 64, machine, network=slow
)
print(f"  fast network: {fast.parallel_efficiency:.2%} efficient")
print(f"  slow network: {degraded.parallel_efficiency:.2%} efficient")

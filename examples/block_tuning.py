"""Block-size tuning: analytic ECM selection vs empirical autotuning.

Reproduces the workflow behind experiments F2/T3: sweep the spatial
block space of a long-range stencil, compare the model's choice against
the empirical optimum, and print the cost each tuner paid.

Run with::

    python examples/block_tuning.py
"""

from repro import YaskSite, get_stencil
from repro.blocking import block_sweep_table
from repro.util import format_table

ys = YaskSite("clx", cache_scale=1 / 32)
spec = get_stencil("3dlong_r4")  # radius-4 star: blocking matters
shape = (48, 48, 64)

print(f"stencil: {spec.name}  grid: {shape}  machine: {ys.machine.name}\n")

# The model's view of the whole candidate space (no execution).
rows = block_sweep_table(spec, shape, ys.machine)
print(format_table(rows, title="ECM prediction per candidate block"))

# Three tuners, one ledger.
print("\nTuner comparison (exhaustive / greedy / ecm):")
ledger = []
for tuner_name in ("exhaustive", "greedy", "ecm"):
    res = ys.tune(spec, shape, tuner=tuner_name)
    ledger.append(
        {
            "tuner": res.tuner,
            "variants examined": res.variants_examined,
            "variants RUN": res.variants_run,
            "simulated run cost (ms)": round(res.simulated_run_seconds * 1e3, 1),
            "best block": "x".join(map(str, res.best_plan.block)),
            "best MLUP/s": round(res.best_mlups, 1),
        }
    )
print(format_table(ledger))
print(
    "\nThe ECM tuner examined the same space analytically and ran at most "
    "one kernel;\nthe exhaustive tuner had to execute every variant."
)
